(* Tests for the durability subsystem: the CRC and WAL codecs round-trip
   and reject every torn or bit-flipped tail, group commit delivers every
   acknowledged append, recovery replays exactly the records past the
   snapshot's epoch cut, fuzzy snapshots taken against racing mutators
   always refine the final partition (100 seeded races per layout), the
   epoch-stamped snapshot codec round-trips, crash-atomic write_file
   leaves no droppings, and the full durable chaos drill passes. *)

module Crc32 = Repro_util.Crc32
module Epoch = Repro_durable.Epoch
module Wal = Repro_durable.Wal
module Fuzzy = Repro_durable.Fuzzy
module Recovery = Repro_durable.Recovery
module Snap = Repro_recover.Snapshot
module Repair = Repro_recover.Repair
module Restore = Repro_recover.Restore
module Chaos = Harness.Chaos
module Policy = Dsu.Find_policy
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f
let temp_wal () = Filename.temp_file "test-durable" ".wal"

let read_bin path = In_channel.with_open_bin path In_channel.input_all

let tail_of path =
  match Wal.read_file path with Ok t -> t | Error e -> Alcotest.fail e

(* ----------------------------------------------------------------- crc *)

let test_crc_vector () =
  (* the standard IEEE CRC-32 check vector *)
  check Alcotest.int "123456789" 0xCBF43926 (Crc32.string "123456789");
  check Alcotest.int "empty" 0 (Crc32.string "");
  check Alcotest.int "sub = whole" (Crc32.string "abc")
    (Crc32.sub "xxabcxx" ~pos:2 ~len:3)

(* --------------------------------------------------------------- epoch *)

let test_epoch () =
  let e = Epoch.create () in
  check Alcotest.int "starts at 1 (0 is the quiescent sentinel)" 1
    (Epoch.current e);
  check Alcotest.int "bump returns the new value" 2 (Epoch.bump e);
  check Alcotest.int "current follows" 2 (Epoch.current e)

(* --------------------------------------------------------------- codec *)

let test_record_roundtrip () =
  let r = { Wal.seq = 42; epoch = 7; x = 123_456; y = 654_321 } in
  match Wal.decode_record (Bytes.to_string (Wal.encode_record r)) 0 with
  | Ok r' -> check Alcotest.bool "roundtrip" true (r = r')
  | Error _ -> Alcotest.fail "decode of a freshly encoded record failed"

let test_writer_roundtrip () =
  let path = temp_wal () in
  let w = Wal.create_writer ~shards:2 ~flush_records:8 path in
  for i = 0 to 99 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  Wal.close w;
  let tail = tail_of path in
  Sys.remove path;
  check Alcotest.int "all records" 100 (Array.length tail.Wal.records);
  check Alcotest.bool "tail intact" true (tail.Wal.truncated_at = None);
  (* commit order need not be seq order (sharded staging), but every seq
     must appear exactly once with its payload intact *)
  let seen = Array.make 100 false in
  Array.iter
    (fun (r : Wal.record) ->
      check Alcotest.int "payload" (r.Wal.x + 1) r.Wal.y;
      check Alcotest.bool "seq in range" true (r.Wal.seq >= 0 && r.Wal.seq < 100);
      check Alcotest.bool "seq unique" false seen.(r.Wal.seq);
      seen.(r.Wal.seq) <- true)
    tail.Wal.records;
  check Alcotest.bool "every seq present" true (Array.for_all Fun.id seen)

let test_group_commit_stats () =
  let path = temp_wal () in
  (* a 10s window so only the batch bound and flush/close trigger commits *)
  let w = Wal.create_writer ~flush_records:16 ~flush_interval:10.0 path in
  for i = 0 to 63 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  Wal.flush w;
  let s = Wal.writer_stats w in
  check Alcotest.bool "flush commits everything so far" true
    (s.Wal.ws_committed >= 64);
  Wal.close w;
  let s = Wal.writer_stats w in
  Sys.remove path;
  check Alcotest.int "appended" 64 s.Wal.ws_appended;
  check Alcotest.int "committed = appended after close" 64 s.Wal.ws_committed;
  check Alcotest.bool "chunked into >= 4 commits of <= 16" true
    (s.Wal.ws_commits >= 4)

(* ------------------------------------------------------------- shutdown *)

module Fi = Repro_fault.Inject
module Site = Repro_fault.Site

(* Kill the committer with an injected crash mid-commit, then exercise the
   shutdown paths that used to be able to hang (flush waiting on a commit
   watermark that will never advance) or raise (a second close joining an
   already-joined domain). *)
let test_close_after_committer_crash () =
  let path = temp_wal () in
  Fi.arm
    {
      Fi.seed = 7;
      rules_for =
        (fun slot ->
          if slot = 9 then [ Fi.rule ~sites:[ Site.Wal_commit_mid ] Fi.Crash ]
          else []);
    };
  let w =
    Wal.create_writer ~shards:1 ~flush_records:4 ~flush_interval:0.0005
      ~on_committer_start:(fun () -> Fi.enroll ~slot:9)
      path
  in
  for i = 0 to 31 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  (* The first commit attempt dies at Wal_commit_mid; wait for the latch. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Wal.crashed w = None && Unix.gettimeofday () < deadline do
    Wal.flush w;
    Unix.sleepf 0.001
  done;
  check Alcotest.bool "committer crashed" true (Wal.crashed w <> None);
  Wal.flush w;
  (* must not hang *)
  Wal.close w;
  (* must not hang or re-raise *)
  Wal.close w;
  (* second close: no double join *)
  Fi.disarm ();
  Sys.remove path;
  check Alcotest.bool "injected crash is not a failure" true
    (Wal.failed w = None)

(* A committer killed by a real exception (not an injected crash) must
   latch it too: here the start hook raises before the commit loop even
   begins, the historically worst case — nothing was ever going to set the
   old crash latch. *)
let test_close_after_committer_failure () =
  let path = temp_wal () in
  let w =
    Wal.create_writer ~shards:1 ~flush_interval:0.0005
      ~on_committer_start:(fun () -> failwith "committer start blew up")
      path
  in
  Wal.append w ~child:0 ~parent:1;
  Wal.flush w;
  (* must not hang: the failure latch ends the wait *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Wal.failed w = None && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.001
  done;
  (match Wal.failed w with
  | Some (Failure msg) ->
    check Alcotest.string "latched exception" "committer start blew up" msg
  | Some e -> Alcotest.failf "unexpected latched exception %s" (Printexc.to_string e)
  | None -> Alcotest.fail "committer failure never latched");
  Wal.close w;
  Wal.close w;
  Sys.remove path;
  check Alcotest.bool "no injected-crash latch" true (Wal.crashed w = None)

(* Concurrent closers: exactly one does the join, the rest are no-ops. *)
let test_concurrent_close () =
  let path = temp_wal () in
  let w = Wal.create_writer ~shards:2 path in
  for i = 0 to 99 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  let closers =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Wal.close w))
  in
  List.iter Domain.join closers;
  let s = Wal.writer_stats w in
  Sys.remove path;
  check Alcotest.int "everything committed" 100 s.Wal.ws_committed

(* ----------------------------------------------------------- torn tails *)

(* Truncate a valid WAL at EVERY byte length: the reader must return
   exactly the whole records that fit and flag the torn point, never
   error, never fabricate a record from a partial suffix. *)
let test_truncation_every_length () =
  let path = temp_wal () in
  let w = Wal.create_writer ~shards:1 path in
  for i = 0 to 19 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  Wal.close w;
  let data = read_bin path in
  Sys.remove path;
  let magic_len = String.length Wal.magic in
  check Alcotest.int "file shape" (magic_len + (20 * Wal.record_bytes))
    (String.length data);
  for len = 0 to magic_len - 1 do
    match Wal.of_string (String.sub data 0 len) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted a %d-byte file without the magic" len
  done;
  for len = magic_len to String.length data do
    match Wal.of_string (String.sub data 0 len) with
    | Error e -> Alcotest.failf "len %d: %s" len e
    | Ok tail ->
      let whole = (len - magic_len) / Wal.record_bytes in
      check Alcotest.int
        (Printf.sprintf "whole records at len %d" len)
        whole
        (Array.length tail.Wal.records);
      let torn = (len - magic_len) mod Wal.record_bytes <> 0 in
      check
        Alcotest.(option int)
        (Printf.sprintf "torn point at len %d" len)
        (if torn then Some (magic_len + (whole * Wal.record_bytes)) else None)
        tail.Wal.truncated_at
  done

(* Flip one bit in every byte of a valid WAL: a flip inside the magic is
   a hard error; a flip inside record k truncates the valid prefix to
   exactly the first k records (CRC-32 catches every single-bit flip). *)
let test_bitflip_every_byte () =
  let path = temp_wal () in
  let w = Wal.create_writer ~shards:1 path in
  for i = 0 to 5 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  Wal.close w;
  let data = read_bin path in
  Sys.remove path;
  let magic_len = String.length Wal.magic in
  for pos = 0 to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
    match Wal.of_string (Bytes.to_string b) with
    | Error _ ->
      check Alcotest.bool
        (Printf.sprintf "only magic flips may error (pos %d)" pos)
        true (pos < magic_len)
    | Ok tail ->
      check Alcotest.bool
        (Printf.sprintf "flip past the magic decodes (pos %d)" pos)
        true (pos >= magic_len);
      let bad = (pos - magic_len) / Wal.record_bytes in
      check Alcotest.int
        (Printf.sprintf "prefix stops at the corrupt record (pos %d)" pos)
        bad
        (Array.length tail.Wal.records);
      check
        Alcotest.(option int)
        (Printf.sprintf "torn at the corrupt record (pos %d)" pos)
        (Some (magic_len + (bad * Wal.record_bytes)))
        tail.Wal.truncated_at
  done

let test_truncate_file () =
  let path = temp_wal () in
  let w = Wal.create_writer ~shards:1 path in
  for i = 0 to 9 do
    Wal.append w ~child:i ~parent:(i + 1)
  done;
  Wal.close w;
  let full = read_bin path in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 5)));
  let t1 = tail_of path in
  check Alcotest.bool "torn after the tear" true (t1.Wal.truncated_at <> None);
  check Alcotest.int "one record lost" 9 (Array.length t1.Wal.records);
  let t2 =
    match Wal.truncate_file path with Ok t -> t | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "clean after truncate" true (t2.Wal.truncated_at = None);
  let t3 = tail_of path in
  Sys.remove path;
  check Alcotest.bool "physically clean on re-read" true
    (t3.Wal.truncated_at = None && Array.length t3.Wal.records = 9)

(* ------------------------------------------------------------- recovery *)

let test_replay_epoch_cut () =
  let d = Dsu.Native.create ~seed:1 8 in
  Dsu.Native.unite d 0 1;
  let snap = Snap.with_epoch (Snap.of_native d) 3 in
  let restored =
    match Restore.restore_result snap with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let records =
    [|
      { Wal.seq = 0; epoch = 1; x = 2; y = 3 } (* below the cut: skipped *);
      { Wal.seq = 1; epoch = 3; x = 4; y = 5 } (* at the cut: replayed *);
      { Wal.seq = 2; epoch = 4; x = 0; y = 6 } (* past the cut: replayed *);
      { Wal.seq = 3; epoch = 4; x = 7; y = 99 } (* out of the universe *);
    |]
  in
  let replayed, skipped, out_of_range =
    Recovery.replay restored ~from_epoch:3 records
  in
  check Alcotest.int "replayed" 2 replayed;
  check Alcotest.int "skipped" 1 skipped;
  check Alcotest.int "out of range" 1 out_of_range;
  check Alcotest.bool "4-5 united" true (Restore.same_set restored 4 5);
  check Alcotest.bool "0-6 united" true (Restore.same_set restored 0 6);
  check Alcotest.bool "2-3 stayed apart" false (Restore.same_set restored 2 3)

(* End to end: an epoch-0 quiescent snapshot, then a fuzzy epoch-stamped
   one, then more logged unites.  recover_files must skip the garbage
   candidate, pick the fuzzy snapshot (highest epoch), replay the tail
   and land on exactly the live structure's partition. *)
let test_recover_files_end_to_end () =
  let wal_path = temp_wal () in
  let s_old = Filename.temp_file "test-durable-old" ".snap" in
  let s_new = Filename.temp_file "test-durable-new" ".snap" in
  let junk = Filename.temp_file "test-durable-junk" ".snap" in
  Out_channel.with_open_bin junk (fun oc ->
      Out_channel.output_string oc "not a snapshot at all");
  let w = Wal.create_writer ~shards:1 ~flush_records:4 wal_path in
  let n = 64 in
  let d = Dsu.Native.create ~on_link:(Wal.append w) ~seed:3 n in
  let rng = Rng.create 17 in
  for _ = 1 to 30 do
    Dsu.Native.unite d (Rng.int rng n) (Rng.int rng n)
  done;
  Snap.write_file s_old (Snap.of_native d);
  let cap = Fuzzy.of_native ~epoch:(Wal.epoch w) d in
  check Alcotest.int "no fixes at quiescence" 0 (List.length cap.Fuzzy.fixes);
  check Alcotest.bool "epoch stamped" true (cap.Fuzzy.snapshot.Snap.epoch > 0);
  Snap.write_file s_new cap.Fuzzy.snapshot;
  for _ = 1 to 30 do
    Dsu.Native.unite d (Rng.int rng n) (Rng.int rng n)
  done;
  Wal.close w;
  (match
     Recovery.recover_files ~snapshots:[ junk; s_old; s_new ] ~wal:wal_path ()
   with
  | Error e -> Alcotest.fail e
  | Ok (restored, stats) ->
    check Alcotest.bool "picked the fuzzy snapshot" true
      (stats.Recovery.snapshot_epoch > 0);
    check Alcotest.int "no repair fixes" 0 stats.Recovery.fixes;
    check Alcotest.bool "tail intact" true
      (stats.Recovery.truncated_at = None);
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        check Alcotest.bool
          (Printf.sprintf "partition matches at (%d,%d)" i j)
          (Dsu.Native.same_set d i j)
          (Restore.same_set restored i j)
      done
    done);
  List.iter Sys.remove [ wal_path; s_old; s_new; junk ]

(* ------------------------------------------------- fuzzy vs racing runs *)

(* Spawn racing mutator domains, capture mid-flight, join, snapshot the
   quiescent end state.  The fuzzy cut must refine the final partition on
   every layout and every seed; the random-priority layouts additionally
   must need zero reconciliation fixes (Lemma 3.1). *)
let run_racing ~seed ~n ~ops ~domains ~unite ~capture =
  let workers =
    List.init domains (fun k ->
        Domain.spawn (fun () ->
            let rng = Rng.create (seed + (100 * k)) in
            for _ = 1 to ops do
              unite (Rng.int rng n) (Rng.int rng n)
            done))
  in
  let cap = capture () in
  List.iter Domain.join workers;
  cap

let check_fuzzy_refines ~name ~seeds ~strict run =
  for seed = 1 to seeds do
    let cap, final = run seed in
    if strict then
      check Alcotest.int
        (Printf.sprintf "%s seed %d: no fixes" name seed)
        0
        (List.length cap.Fuzzy.fixes)
    else if cap.Fuzzy.fixes <> [] then
      check Alcotest.int
        (Printf.sprintf "%s seed %d: fixes void the epoch cut" name seed)
        0 cap.Fuzzy.snapshot.Snap.epoch;
    check Alcotest.bool
      (Printf.sprintf "%s seed %d: raw cut refines final" name seed)
      true
      (Repair.refines ~fine:cap.Fuzzy.raw ~coarse:final);
    check Alcotest.bool
      (Printf.sprintf "%s seed %d: reconciled cut refines final" name seed)
      true
      (Repair.refines ~fine:cap.Fuzzy.snapshot ~coarse:final)
  done

let seeds = 100
let race_n = 64
let race_ops = 300
let race_domains = 2

let test_fuzzy_flat () =
  check_fuzzy_refines ~name:"flat" ~seeds ~strict:true (fun seed ->
      let d = Dsu.Native.create ~seed race_n in
      let cap =
        run_racing ~seed ~n:race_n ~ops:race_ops ~domains:race_domains
          ~unite:(Dsu.Native.unite d)
          ~capture:(fun () -> Fuzzy.of_native d)
      in
      (cap, Snap.of_native d))

let test_fuzzy_boxed () =
  check_fuzzy_refines ~name:"boxed" ~seeds ~strict:true (fun seed ->
      let d = Dsu.Boxed.create ~seed race_n in
      let cap =
        run_racing ~seed ~n:race_n ~ops:race_ops ~domains:race_domains
          ~unite:(Dsu.Boxed.unite d)
          ~capture:(fun () -> Fuzzy.of_boxed d)
      in
      (cap, Snap.of_boxed d))

let test_fuzzy_growable () =
  check_fuzzy_refines ~name:"growable" ~seeds ~strict:true (fun seed ->
      let d = Dsu.Growable.create ~seed ~capacity:race_n () in
      for _ = 1 to race_n do
        ignore (Dsu.Growable.make_set d : int)
      done;
      let cap =
        run_racing ~seed ~n:race_n ~ops:race_ops ~domains:race_domains
          ~unite:(Dsu.Growable.unite d)
          ~capture:(fun () -> Fuzzy.of_growable d)
      in
      (cap, Snap.of_growable d))

let test_fuzzy_rank () =
  check_fuzzy_refines ~name:"rank" ~seeds ~strict:false (fun seed ->
      let d = Dsu.Rank.Native.create race_n in
      let cap =
        run_racing ~seed ~n:race_n ~ops:race_ops ~domains:race_domains
          ~unite:(Dsu.Rank.Native.unite d)
          ~capture:(fun () -> Fuzzy.of_rank d)
      in
      (cap, Snap.of_rank d))

let test_fuzzy_packed () =
  check_fuzzy_refines ~name:"packed" ~seeds ~strict:false (fun seed ->
      let d = Dsu.Packed.Native.create race_n in
      let cap =
        run_racing ~seed ~n:race_n ~ops:race_ops ~domains:race_domains
          ~unite:(Dsu.Packed.Native.unite d)
          ~capture:(fun () -> Fuzzy.of_packed d)
      in
      (cap, Snap.of_packed d))

(* -------------------------------------------------------- snapshot epoch *)

let test_snapshot_epoch_roundtrip () =
  let d = Dsu.Native.create ~seed:2 16 in
  Dsu.Native.unite d 0 1;
  let s = Snap.with_epoch (Snap.of_native d) 42 in
  (match Snap.of_binary_string (Snap.to_binary_string s) with
  | Ok b -> check Alcotest.int "binary epoch" 42 b.Snap.epoch
  | Error e -> Alcotest.fail e);
  (match Snap.of_json_string (Snap.to_json_string s) with
  | Ok j -> check Alcotest.int "json epoch" 42 j.Snap.epoch
  | Error e -> Alcotest.fail e);
  match Snap.with_epoch s (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative epoch accepted"

let test_write_file_atomic () =
  let path = Filename.temp_file "test-durable-atomic" ".snap" in
  let d = Dsu.Native.create ~seed:4 8 in
  Dsu.Native.unite d 0 1;
  Snap.write_file path (Snap.of_native d);
  let first =
    match Snap.read_file path with Ok s -> s | Error e -> Alcotest.fail e
  in
  Dsu.Native.unite d 2 3;
  Snap.write_file path (Snap.of_native d);
  let second =
    match Snap.read_file path with Ok s -> s | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "overwrite replaced the content" false
    (Snap.equal first second);
  (* the temp+rename discipline must not leave <path>.tmp.* droppings *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let droppings =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           f <> base
           && String.length f > String.length base
           && String.sub f 0 (String.length base) = base)
  in
  Sys.remove path;
  check Alcotest.(list string) "no temp droppings" [] droppings

(* ---------------------------------------------------------- durable drill *)

let drill_config =
  {
    Chaos.default_config with
    n = 256;
    ops_per_domain = 2_000;
    domains = 2;
    stall_prob = 0.0;
  }

let test_durable_drill kind () =
  let d =
    Chaos.run_durable_scenario ~config:drill_config ~kind
      ~policy:Policy.Two_try_splitting ()
  in
  if not (Chaos.durable_ok d) then
    Alcotest.failf "durable drill failed:@.%a" Chaos.pp_durable d;
  check Alcotest.bool "snapshotter crashed" true (d.Chaos.d_snap_crash <> None);
  check Alcotest.bool "committer crashed" true (d.Chaos.d_commit_crash <> None);
  check Alcotest.bool "wal tail torn" true (d.Chaos.d_truncated_at <> None);
  check Alcotest.bool "recovery ran" true (d.Chaos.d_recovery <> None)

let () =
  Alcotest.run "durable"
    [
      ( "crc-epoch",
        [ case "crc32 check vector" test_crc_vector; case "epoch" test_epoch ]
      );
      ( "wal-codec",
        [
          case "record roundtrip" test_record_roundtrip;
          case "writer roundtrip" test_writer_roundtrip;
          case "group commit stats" test_group_commit_stats;
        ] );
      ( "wal-shutdown",
        [
          case "close after committer crash" test_close_after_committer_crash;
          case "close after committer failure" test_close_after_committer_failure;
          case "concurrent close" test_concurrent_close;
        ] );
      ( "torn-tails",
        [
          case "truncation at every byte length" test_truncation_every_length;
          case "bit flip in every byte" test_bitflip_every_byte;
          case "physical truncate" test_truncate_file;
        ] );
      ( "recovery",
        [
          case "epoch cut replay" test_replay_epoch_cut;
          case "recover_files end to end" test_recover_files_end_to_end;
        ] );
      ( "fuzzy-refines",
        [
          case "flat x100 races" test_fuzzy_flat;
          case "boxed x100 races" test_fuzzy_boxed;
          case "growable x100 races" test_fuzzy_growable;
          case "rank x100 races" test_fuzzy_rank;
          case "packed x100 races" test_fuzzy_packed;
        ] );
      ( "snapshot",
        [
          case "epoch codec roundtrip" test_snapshot_epoch_roundtrip;
          case "crash-atomic write_file" test_write_file_atomic;
        ] );
      ( "drill",
        [
          case "flat" (test_durable_drill Snap.Flat);
          case "packed" (test_durable_drill Snap.Packed);
        ] );
    ]
