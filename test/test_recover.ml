(* Tests for the crash-recovery subsystem: the snapshot codecs round-trip
   all four layouts, corrupted and truncated files are rejected as errors,
   repair-on-restart fixes seeded storage corruption while provably only
   splitting sets, and a crashed multi-domain run snapshots, restores and
   resumes to a clean full audit. *)

module Snap = Repro_recover.Snapshot
module Repair = Repro_recover.Repair
module Restore = Repro_recover.Restore
module Chaos = Harness.Chaos

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let rng_ops ~seed ~n ~ops apply =
  let rng = Repro_util.Rng.create seed in
  for _ = 1 to ops do
    apply (Repro_util.Rng.int rng n) (Repro_util.Rng.int rng n)
  done

(* One populated instance per layout, snapshotted at quiescence. *)

let native_snap () =
  let d = Dsu.Native.create ~seed:5 128 in
  rng_ops ~seed:11 ~n:128 ~ops:200 (Dsu.Native.unite d);
  Snap.of_native d

let boxed_snap () =
  let d = Dsu.Boxed.create ~seed:5 128 in
  rng_ops ~seed:11 ~n:128 ~ops:200 (Dsu.Boxed.unite d);
  Snap.of_boxed d

let growable_snap () =
  let d = Dsu.Growable.create ~seed:5 ~capacity:256 () in
  for _ = 1 to 100 do
    ignore (Dsu.Growable.make_set d : int)
  done;
  rng_ops ~seed:11 ~n:100 ~ops:150 (Dsu.Growable.unite d);
  Snap.of_growable d

let rank_snap () =
  let d = Dsu.Rank.Native.create 128 in
  rng_ops ~seed:11 ~n:128 ~ops:200 (Dsu.Rank.Native.unite d);
  Snap.of_rank d

let packed_snap () =
  let d = Dsu.Packed.Native.create 128 in
  rng_ops ~seed:11 ~n:128 ~ops:200 (Dsu.Packed.Native.unite d);
  Snap.of_packed d

let all_layouts =
  [
    ("flat", native_snap); ("boxed", boxed_snap); ("growable", growable_snap);
    ("rank", rank_snap); ("packed", packed_snap);
  ]

(* ---------------------------------------------------------------- codec *)

let roundtrip name encode decode snap =
  match decode (encode snap) with
  | Ok snap' -> check Alcotest.bool (name ^ " equal") true (Snap.equal snap snap')
  | Error e -> Alcotest.failf "%s decode failed: %s" name e

let codec_tests =
  List.concat_map
    (fun (layout, make) ->
      [
        case (layout ^ ": snapshot is a valid forest") (fun () ->
            check Alcotest.bool "ok" true (Snap.ok (make ())));
        case (layout ^ ": binary round-trip") (fun () ->
            roundtrip "binary" Snap.to_binary_string Snap.of_binary_string
              (make ()));
        case (layout ^ ": json round-trip") (fun () ->
            roundtrip "json" Snap.to_json_string Snap.of_json_string (make ()));
        case (layout ^ ": file round-trip auto-detects both formats")
          (fun () ->
            let snap = make () in
            List.iter
              (fun format ->
                let path = Filename.temp_file "dsu_snap" ".snap" in
                Fun.protect
                  ~finally:(fun () -> Sys.remove path)
                  (fun () ->
                    Snap.write_file ~format path snap;
                    match Snap.read_file path with
                    | Ok snap' ->
                      check Alcotest.bool "equal" true (Snap.equal snap snap')
                    | Error e -> Alcotest.failf "read_file: %s" e))
              [ Snap.Binary; Snap.Json ]);
        case (layout ^ ": restore round-trips the snapshot") (fun () ->
            let snap = make () in
            let restored = Restore.restore snap in
            check Alcotest.bool "re-snapshot equal" true
              (Snap.equal snap (Restore.snapshot restored));
            check Alcotest.string "kind" layout
              (Snap.kind_to_string (Restore.kind restored)));
      ])
    all_layouts
  @ [
      case "kind strings round-trip" (fun () ->
          List.iter
            (fun k ->
              check Alcotest.bool "round-trip" true
                (Snap.kind_of_string (Snap.kind_to_string k) = Some k))
            [ Snap.Flat; Snap.Boxed; Snap.Growable; Snap.Rank; Snap.Packed ]);
      case "corrupted byte fails the checksum" (fun () ->
          let s = Snap.to_binary_string (native_snap ()) in
          let b = Bytes.of_string s in
          Bytes.set b (Bytes.length b / 2)
            (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0xff));
          match Snap.of_binary_string (Bytes.to_string b) with
          | Ok _ -> Alcotest.fail "corrupted snapshot accepted"
          | Error e ->
            check Alcotest.bool "mentions checksum" true
              (String.length e >= 8 && String.sub e 0 8 = "checksum"));
      case "truncated file is rejected" (fun () ->
          let s = Snap.to_binary_string (native_snap ()) in
          List.iter
            (fun len ->
              match Snap.of_binary_string (String.sub s 0 len) with
              | Ok _ -> Alcotest.failf "truncation to %d accepted" len
              | Error _ -> ())
            [ 0; 4; 12; String.length s - 1 ]);
      case "bad magic is rejected" (fun () ->
          match Snap.of_binary_string (String.make 64 'x') with
          | Ok _ -> Alcotest.fail "garbage accepted"
          | Error e ->
            check Alcotest.bool "mentions magic" true
              (String.length e >= 9 && String.sub e 0 9 = "bad magic"));
      case "tampered json checksum is rejected" (fun () ->
          let s = Snap.to_json_string (native_snap ()) in
          (* Retarget the first parents entry textually without touching
             the checksum field. *)
          let needle = "\"parents\":[" in
          let rec index_of i =
            if i + String.length needle > String.length s then None
            else if String.sub s i (String.length needle) = needle then Some i
            else index_of (i + 1)
          in
          match index_of 0 with
          | None -> Alcotest.fail "tamper point not found"
          | Some i ->
            let b = Bytes.of_string s in
            let j = i + String.length needle in
            Bytes.set b j (if Bytes.get b j = '0' then '1' else '0');
            let tampered = Bytes.to_string b in
            match Snap.of_json_string tampered with
            | Ok _ -> Alcotest.fail "tampered json accepted"
            | Error _ -> ());
      case "json junk is an error, not an exception" (fun () ->
          List.iter
            (fun junk ->
              match Snap.of_json_string junk with
              | Ok _ -> Alcotest.failf "junk accepted: %s" junk
              | Error _ -> ())
            [ "{}"; "[]"; "not json at all"; "{\"schema\":\"wrong/v9\"}" ]);
      case "packed: corrupt file on disk is rejected by read_file" (fun () ->
          let snap = packed_snap () in
          let path = Filename.temp_file "dsu_snap" ".snap" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Snap.write_file ~format:Snap.Binary path snap;
              let data =
                let ic = open_in_bin path in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              let b = Bytes.of_string data in
              let mid = Bytes.length b / 2 in
              Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x55));
              let oc = open_out_bin path in
              Fun.protect
                ~finally:(fun () -> close_out_noerr oc)
                (fun () -> output_bytes oc b);
              match Snap.read_file path with
              | Ok _ -> Alcotest.fail "corrupt packed snapshot accepted"
              | Error _ -> ()));
      case "packed: restore rejects fields the word cannot hold" (fun () ->
          (* A decoded snapshot can still be unrepresentable in the packed
             word: ranks above the 21-bit field and out-of-range parents
             must surface as restore errors, not silent truncation. *)
          let base = packed_snap () in
          let with_prio i v =
            let prios = Array.copy base.Snap.prios in
            prios.(i) <- v;
            { base with Snap.prios }
          in
          let with_parent i v =
            let parents = Array.copy base.Snap.parents in
            parents.(i) <- v;
            { base with Snap.parents }
          in
          List.iter
            (fun (label, snap) ->
              match Restore.restore_result snap with
              | Ok _ -> Alcotest.failf "%s accepted" label
              | Error _ -> ())
            [
              ("oversized rank", with_prio 0 (Dsu.Packed.max_rank + 1));
              ("negative rank", with_prio 0 (-1));
              ("out-of-range parent", with_parent 3 base.Snap.n);
            ]);
      case "packed: restore-unite-resnapshot agrees with the rank oracle"
        (fun () ->
          (* Resume semantics: operations applied to a restored packed
             instance must partition identically to the same operations on
             an independently restored instance of another kind. *)
          let snap = packed_snap () in
          let restored = Restore.restore snap in
          (match restored with
          | Restore.Packed _ -> ()
          | _ -> Alcotest.fail "packed snapshot restored to another kind");
          let oracle =
            Restore.restore { snap with Snap.kind = Snap.Rank }
          in
          rng_ops ~seed:23 ~n:snap.Snap.n ~ops:150 (fun x y ->
              Restore.unite restored x y;
              Restore.unite oracle x y);
          for x = 0 to snap.Snap.n - 1 do
            for y = x + 1 to min (snap.Snap.n - 1) (x + 7) do
              check Alcotest.bool
                (Printf.sprintf "same_set %d %d" x y)
                (Restore.same_set oracle x y)
                (Restore.same_set restored x y)
            done
          done;
          check Alcotest.int "set counts agree" (Restore.count_sets oracle)
            (Restore.count_sets restored);
          check Alcotest.bool "re-snapshot still a valid forest" true
            (Snap.ok (Restore.snapshot restored)));
    ]

(* --------------------------------------------------------------- repair *)

let mk_snap parents prios =
  {
    Snap.kind = Snap.Flat;
    n = Array.length parents;
    capacity = Array.length parents;
    epoch = 0;
    parents;
    prios;
  }

let repair_tests =
  [
    case "clean snapshot: zero fixes" (fun () ->
        List.iter
          (fun (_, make) ->
            let snap = make () in
            let snap', fixes = Repair.repair snap in
            check Alcotest.int "no fixes" 0 (List.length fixes);
            check Alcotest.bool "unchanged" true (Snap.equal snap snap'))
          all_layouts);
    case "seeded 2-cycle is broken at the min-priority node" (fun () ->
        let snap = mk_snap [| 1; 0; 2 |] [| 3; 7; 1 |] in
        let snap', fixes = Repair.repair snap in
        check Alcotest.bool "repaired ok" true (Snap.ok snap');
        check Alcotest.bool "has a cycle fix" true
          (List.exists (fun f -> f.Repair.reason = Repair.Cycle) fixes);
        (* node 0 has the lower priority: it must be the one rooted, and the
           surviving 1 -> 0 edge keeps the component together. *)
        check Alcotest.int "0 rooted" 0 snap'.Snap.parents.(0);
        check Alcotest.bool "refines" true
          (Repair.refines ~fine:snap' ~coarse:snap));
    case "priority-order violation is rooted" (fun () ->
        (* 1 -> 0 but prio(1) > prio(0): Lemma 3.1 forbids the edge. *)
        let snap = mk_snap [| 0; 0 |] [| 5; 9 |] in
        let snap', fixes = Repair.repair snap in
        check Alcotest.bool "repaired ok" true (Snap.ok snap');
        check Alcotest.bool "order fix" true
          (List.exists
             (fun f -> f.Repair.node = 1 && f.Repair.reason = Repair.Order)
             fixes);
        check Alcotest.bool "refines" true
          (Repair.refines ~fine:snap' ~coarse:snap));
    case "out-of-range parent is rooted" (fun () ->
        let snap = mk_snap [| 7; 1 |] [| 1; 2 |] in
        let snap', fixes = Repair.repair snap in
        check Alcotest.bool "repaired ok" true (Snap.ok snap');
        check Alcotest.bool "range fix on 0" true
          (List.exists
             (fun f -> f.Repair.node = 0 && f.Repair.reason = Repair.Out_of_range)
             fixes);
        check Alcotest.int "0 self-rooted" 0 snap'.Snap.parents.(0));
    case "repair of a mangled real snapshot refines it" (fun () ->
        let snap = native_snap () in
        let parents = Array.copy snap.Snap.parents in
        (* Mangle three nodes: a 2-cycle and an out-of-range parent. *)
        parents.(0) <- 1;
        parents.(1) <- 0;
        parents.(2) <- snap.Snap.n + 41;
        let bad = { snap with Snap.parents } in
        let snap', fixes = Repair.repair bad in
        check Alcotest.bool "repaired ok" true (Snap.ok snap');
        check Alcotest.bool "some fixes" true (fixes <> []);
        check Alcotest.bool "refines the corrupted snapshot" true
          (Repair.refines ~fine:snap' ~coarse:bad));
    case "refines rejects a merge" (fun () ->
        (* fine glues {0,1}; coarse keeps them apart. *)
        let fine = mk_snap [| 0; 0 |] [| 2; 1 |] in
        let coarse = mk_snap [| 0; 1 |] [| 2; 1 |] in
        check Alcotest.bool "not a refinement" false
          (Repair.refines ~fine ~coarse);
        check Alcotest.bool "other direction holds" true
          (Repair.refines ~fine:coarse ~coarse:fine));
    case "restore_result reports invalid snapshots as errors" (fun () ->
        let bad = mk_snap [| 1; 0 |] [| 1; 0 |] in
        (match Restore.restore_result bad with
        | Ok _ -> Alcotest.fail "cyclic snapshot restored"
        | Error _ -> ());
        let repaired, _ = Repair.repair bad in
        match Restore.restore_result repaired with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "repaired snapshot rejected: %s" e);
  ]

(* ------------------------------------------------- crash-resume drill *)

let recovery_config =
  {
    Chaos.default_config with
    Chaos.n = 512;
    ops_per_domain = 3_000;
    domains = 4;
    crash_domains = 2;
    crash_after = 400;
    stall_prob = 0.02;
    stall_len = 16;
  }

let find_check name checks =
  match List.find_opt (fun c -> c.Chaos.check_name = name) checks with
  | Some c -> c
  | None -> Alcotest.failf "check %s not reported" name

let recovery_tests =
  [
    case "4-domain crash -> snapshot -> repair -> resume passes the audit"
      (fun () ->
        let s, r =
          Chaos.run_recovery_scenario ~config:recovery_config
            ~layout:Harness.Scalability.Flat
            ~policy:Dsu.Find_policy.Two_try_splitting ()
        in
        check Alcotest.bool "phase-1 scenario ok" true (Chaos.scenario_ok s);
        check Alcotest.bool "recovery ok" true (Chaos.recovery_ok r);
        check Alcotest.int "no repair fixes (Theorem 3.4)" 0
          (List.length r.Chaos.fixes);
        check Alcotest.int "both crashed slots resumed" 2
          (List.length r.Chaos.resumed_slots);
        check Alcotest.bool "resumed some operations" true
          (r.Chaos.resumed_ops > 0);
        List.iter
          (fun name ->
            let c = find_check name r.Chaos.recovery_checks in
            check Alcotest.bool name true c.Chaos.passed)
          [ "codec-roundtrip"; "repair-clean"; "repair-refines"; "resumed-complete" ];
        (* The resumed audit re-runs the oracle sweep: the sameset-false
           check against the sequential oracle must be among the passes. *)
        let oracle = find_check "sameset-false" r.Chaos.recovery_checks in
        check Alcotest.bool "oracle sweep passed" true oracle.Chaos.passed;
        check Alcotest.bool "crash snapshot itself validates" true
          (Snap.ok r.Chaos.crash_snapshot));
    case "crash-free recovery drill also passes (nothing to resume)"
      (fun () ->
        let config =
          { recovery_config with Chaos.crash_domains = 0; ops_per_domain = 1_000 }
        in
        let s, r =
          Chaos.run_recovery_scenario ~config ~layout:Harness.Scalability.Flat
            ~policy:Dsu.Find_policy.One_try_splitting ()
        in
        check Alcotest.bool "scenario ok" true (Chaos.scenario_ok s);
        check Alcotest.bool "recovery ok" true (Chaos.recovery_ok r);
        check Alcotest.bool "no slots resumed" true (r.Chaos.resumed_slots = []));
    case "resume counters exclude phase-1 operations" (fun () ->
        Repro_obs.Metrics.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Repro_obs.Metrics.set_enabled false)
          (fun () ->
            let _, r =
              Chaos.run_recovery_scenario ~config:recovery_config
                ~layout:Harness.Scalability.Flat
                ~policy:Dsu.Find_policy.Two_try_splitting ()
            in
            let total name samples =
              match List.assoc_opt name samples with Some v -> v | None -> 0
            in
            let p1 = total "dsu_ops_total" r.Chaos.phase1_counters in
            let resumed = total "dsu_ops_total" r.Chaos.resume_counters in
            check Alcotest.bool "phase 1 counted" true (p1 > 0);
            (* The resume-only delta covers the resumed streams, not the
               whole run: it must be well short of phase 1 + resume. *)
            check Alcotest.bool "no double counting" true (resumed < p1)));
    case "recovery json carries the drill's evidence" (fun () ->
        let results = Chaos.run_recovery_all ~config:recovery_config () in
        let json = Chaos.recovery_report_to_json ~config:recovery_config results in
        let reparsed = Repro_obs.Json.parse_exn (Repro_obs.Json.to_string json) in
        (match Repro_obs.Json.member "schema" reparsed with
        | Some (Repro_obs.Json.String s) ->
          check Alcotest.string "schema" "dsu-chaos/v1" s
        | _ -> Alcotest.fail "missing schema");
        match Repro_obs.Json.member "scenarios" reparsed with
        | Some (Repro_obs.Json.List (first :: _)) -> (
          match Repro_obs.Json.member "recovery" first with
          | Some rec_json -> (
            match Repro_obs.Json.member "ok" rec_json with
            | Some (Repro_obs.Json.Bool ok) ->
              check Alcotest.bool "recovery ok in json" true ok
            | _ -> Alcotest.fail "recovery.ok missing")
          | None -> Alcotest.fail "recovery object missing")
        | _ -> Alcotest.fail "scenarios missing");
  ]

let () =
  Alcotest.run "recover"
    [
      ("codec", codec_tests);
      ("repair", repair_tests);
      ("recovery", recovery_tests);
    ]
