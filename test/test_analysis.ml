(* Tests for the pointer-analysis library: Steensgaard's unification
   analysis (built on Dsu.Growable) against hand-worked examples and the
   Andersen inclusion-based oracle. *)

module S = Analysis.Steensgaard
module A = Analysis.Andersen
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let steensgaard_tests =
  [
    case "empty program: nothing aliases" (fun () ->
        let t = S.analyze [] in
        check Alcotest.bool "alias" false (S.may_alias t "x" "y");
        check Alcotest.(list string) "vars" [] (S.variables t));
    case "two pointers to the same target alias" (fun () ->
        let t = S.analyze [ S.Address_of ("p", "x"); S.Address_of ("q", "x") ] in
        check Alcotest.bool "p~q" true (S.may_alias t "p" "q"));
    case "pointers to different targets become aliased only by unification"
      (fun () ->
        let t = S.analyze [ S.Address_of ("p", "x"); S.Address_of ("q", "y") ] in
        check Alcotest.bool "p!~q" false (S.may_alias t "p" "q");
        (* Now copy q into p: Steensgaard unifies their pointees. *)
        S.process t (S.Copy ("p", "q"));
        check Alcotest.bool "p~q after copy" true (S.may_alias t "p" "q");
        (* Unification is symmetric and infectious: x and y are now in one
           class, so anything pointing at either aliases. *)
        check Alcotest.bool "x~y classes" true (S.same_class t "x" "y"));
    case "copy chains propagate" (fun () ->
        let t =
          S.analyze
            [
              S.Address_of ("a", "v");
              S.Copy ("b", "a");
              S.Copy ("c", "b");
              S.Address_of ("d", "w");
            ]
        in
        check Alcotest.bool "a~c" true (S.may_alias t "a" "c");
        check Alcotest.bool "c!~d" false (S.may_alias t "c" "d"));
    case "load and store unify through the heap" (fun () ->
        (* p = &x; q = &p; r = *q  =>  r aliases p. *)
        let t =
          S.analyze
            [ S.Address_of ("p", "x"); S.Address_of ("q", "p"); S.Load ("r", "q") ]
        in
        check Alcotest.bool "r~p" true
          (S.same_class t "r" "p" || S.may_alias t "r" "p"));
    case "store writes through a pointer" (fun () ->
        (* p = &x; q = &y; *p = q  =>  x's cell now points where q points. *)
        let t =
          S.analyze
            [
              S.Address_of ("p", "x");
              S.Address_of ("q", "y");
              S.Store ("p", "q");
            ]
        in
        check Alcotest.bool "x~q" true (S.may_alias t "x" "q"));
    case "self statements terminate" (fun () ->
        (* Cyclic structures exercise the recursive pointee join. *)
        let t =
          S.analyze
            [
              S.Address_of ("p", "p");
              S.Load ("p", "p");
              S.Store ("p", "p");
              S.Copy ("p", "p");
            ]
        in
        check Alcotest.bool "p~p" true (S.may_alias t "p" "p"));
    case "process is idempotent" (fun () ->
        let stmts = [ S.Address_of ("p", "x"); S.Copy ("q", "p") ] in
        let t = S.analyze (stmts @ stmts @ stmts) in
        let t' = S.analyze stmts in
        check Alcotest.bool "same verdicts" true
          (S.may_alias t "p" "q" = S.may_alias t' "p" "q"));
    case "flow insensitivity: order does not matter" (fun () ->
        let stmts =
          [
            S.Address_of ("p", "x");
            S.Copy ("q", "p");
            S.Address_of ("r", "y");
            S.Store ("q", "r");
            S.Load ("s", "p");
          ]
        in
        let verdicts t =
          List.concat_map
            (fun a ->
              List.map (fun b -> S.may_alias t a b) [ "p"; "q"; "r"; "s"; "x"; "y" ])
            [ "p"; "q"; "r"; "s"; "x"; "y" ]
        in
        let forward = S.analyze stmts in
        let backward = S.analyze (List.rev stmts) in
        check Alcotest.(list bool) "same result" (verdicts forward) (verdicts backward));
    case "cells grow on demand" (fun () ->
        let t = S.create () in
        check Alcotest.int "empty" 0 (S.cells_used t);
        S.process t (S.Address_of ("p", "x"));
        check Alcotest.bool "allocated" true (S.cells_used t >= 2));
  ]

let andersen_tests =
  [
    case "address-of gives a singleton" (fun () ->
        let t = A.analyze [ S.Address_of ("p", "x") ] in
        check Alcotest.(list string) "pts p" [ "x" ] (A.points_to t "p"));
    case "copy unions the sets" (fun () ->
        let t =
          A.analyze
            [ S.Address_of ("p", "x"); S.Address_of ("q", "y"); S.Copy ("r", "p");
              S.Copy ("r", "q") ]
        in
        check Alcotest.(list string) "pts r" [ "x"; "y" ] (A.points_to t "r");
        check Alcotest.bool "r~p" true (A.may_alias t "r" "p");
        check Alcotest.bool "p!~q" false (A.may_alias t "p" "q"));
    case "load goes through the points-to set" (fun () ->
        let t =
          A.analyze
            [
              S.Address_of ("p", "x");
              S.Address_of ("q", "p");
              S.Address_of ("x", "z");
              S.Load ("r", "q");
            ]
        in
        (* q -> {p}; r = *q means r gets pts(p) = {x}. *)
        check Alcotest.(list string) "pts r" [ "x" ] (A.points_to t "r"));
    case "store writes into pointees" (fun () ->
        let t =
          A.analyze
            [
              S.Address_of ("p", "x");
              S.Address_of ("q", "y");
              S.Store ("p", "q");
            ]
        in
        (* *p = q writes pts(q) into x. *)
        check Alcotest.(list string) "pts x" [ "y" ] (A.points_to t "x"));
    case "andersen is at least as precise as steensgaard" (fun () ->
        (* Soundness direction on random programs: Andersen alias implies
           Steensgaard alias. *)
        let rng = Rng.create 77 in
        let var i = Printf.sprintf "v%d" i in
        for _trial = 1 to 60 do
          let stmts =
            List.init 14 (fun _ ->
                let x = var (Rng.int rng 6) and y = var (Rng.int rng 6) in
                match Rng.int rng 4 with
                | 0 -> S.Address_of (x, y)
                | 1 -> S.Copy (x, y)
                | 2 -> S.Load (x, y)
                | _ -> S.Store (x, y))
          in
          let a = A.analyze stmts in
          let s = S.analyze stmts in
          List.iter
            (fun x ->
              List.iter
                (fun y ->
                  if A.may_alias a x y then
                    check Alcotest.bool
                      (Format.asprintf "%s ~ %s in [%a]" x y
                         (Format.pp_print_list ~pp_sep:(fun f () ->
                              Format.pp_print_string f "; ")
                            S.pp_stmt)
                         stmts)
                      true (S.may_alias s x y))
                (A.variables a))
            (A.variables a)
        done);
  ]

let () =
  Alcotest.run "analysis"
    [ ("steensgaard", steensgaard_tests); ("andersen", andersen_tests) ]
