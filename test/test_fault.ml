(* Tests for the fault-injection subsystem: site labels, the injection
   engine's arming/enrollment/rule semantics, the forest validator
   (including a deliberately seeded cycle), and the chaos harness's
   2-of-8 domain-crash demo scenario. *)

module Site = Repro_fault.Site
module Inject = Repro_fault.Inject
module Forest_check = Repro_fault.Forest_check
module Chaos = Harness.Chaos

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ----------------------------------------------------------------- Site *)

let site_tests =
  [
    case "to_string/of_string round-trip" (fun () ->
        List.iter
          (fun s ->
            match Site.of_string (Site.to_string s) with
            | Some s' -> check Alcotest.bool "round-trip" true (s = s')
            | None -> Alcotest.failf "unparseable: %s" (Site.to_string s))
          Site.all);
    case "of_string rejects junk" (fun () ->
        check Alcotest.bool "junk" true (Site.of_string "not-a-site" = None));
    case "cas sites are a subset of all" (fun () ->
        check Alcotest.bool "subset" true
          (List.for_all (fun s -> List.mem s Site.all) Site.cas_sites));
  ]

(* --------------------------------------------------------------- Inject *)

(* These run on the test's own domain: enroll, hammer [hit], observe.  Each
   case arms its own plan and disarms at the end so cases stay independent. *)

let with_plan plan f =
  Inject.arm plan;
  Fun.protect ~finally:Inject.disarm f

let inject_tests =
  [
    case "disarmed hit is a no-op" (fun () ->
        Inject.disarm ();
        Inject.hit Site.Find_hop;
        check Alcotest.int "no hits counted" 0 (Inject.totals ()).Inject.hits);
    case "unenrolled domain never faults" (fun () ->
        with_plan
          { Inject.seed = 1; rules_for = (fun _ -> [ Inject.rule Inject.Crash ]) }
          (fun () ->
            (* no enroll *)
            Inject.hit Site.Find_hop;
            check Alcotest.int "crashes" 0 (Inject.totals ()).Inject.crashes));
    case "crash rule fires after its countdown, exactly once" (fun () ->
        with_plan
          {
            Inject.seed = 2;
            rules_for = (fun _ -> [ Inject.rule ~after:3 Inject.Crash ]);
          }
          (fun () ->
            Inject.enroll ~slot:0;
            Inject.hit Site.Link_cas_pre;
            Inject.hit Site.Link_cas_pre;
            Inject.hit Site.Link_cas_pre;
            (try
               Inject.hit Site.Link_cas_pre;
               Alcotest.fail "expected Crashed"
             with Inject.Crashed (site, slot) ->
               check Alcotest.bool "site" true (site = Site.Link_cas_pre);
               check Alcotest.int "slot" 0 slot);
            let t = Inject.totals () in
            check Alcotest.int "one crash" 1 t.Inject.crashes;
            check Alcotest.int "four hits" 4 t.Inject.hits));
    case "site filter restricts where a rule fires" (fun () ->
        with_plan
          {
            Inject.seed = 3;
            rules_for =
              (fun _ ->
                [ Inject.rule ~sites:[ Site.Split_read_gap ] Inject.Crash ]);
          }
          (fun () ->
            Inject.enroll ~slot:0;
            Inject.hit Site.Find_hop;
            Inject.hit Site.Link_cas_post;
            check Alcotest.int "no crash yet" 0 (Inject.totals ()).Inject.crashes;
            try
              Inject.hit Site.Split_read_gap;
              Alcotest.fail "expected Crashed"
            with Inject.Crashed _ -> ()));
    case "stall and yield rules count and do not raise" (fun () ->
        with_plan
          {
            Inject.seed = 4;
            rules_for =
              (fun _ ->
                [ Inject.rule (Inject.Stall 4); Inject.rule Inject.Yield ]);
          }
          (fun () ->
            Inject.enroll ~slot:0;
            for _ = 1 to 5 do
              Inject.hit Site.Find_hop
            done;
            let t = Inject.totals () in
            check Alcotest.int "stalls" 5 t.Inject.stalls;
            check Alcotest.int "yields" 5 t.Inject.yields;
            check Alcotest.int "crashes" 0 t.Inject.crashes));
    case "my_hops counts Find_hop hits only" (fun () ->
        with_plan
          { Inject.seed = 5; rules_for = (fun _ -> []) }
          (fun () ->
            Inject.enroll ~slot:2;
            Inject.hit Site.Find_hop;
            Inject.hit Site.Find_hop;
            Inject.hit Site.Link_cas_pre;
            check Alcotest.int "hops" 2 (Inject.my_hops ())));
    case "arm resets counters, disarm preserves them" (fun () ->
        with_plan
          { Inject.seed = 6; rules_for = (fun _ -> [ Inject.rule Inject.Yield ]) }
          (fun () ->
            Inject.enroll ~slot:0;
            Inject.hit Site.Find_hop);
        check Alcotest.int "kept after disarm" 1 (Inject.totals ()).Inject.yields;
        with_plan
          { Inject.seed = 7; rules_for = (fun _ -> []) }
          (fun () ->
            check Alcotest.int "zeroed by arm" 0 (Inject.totals ()).Inject.yields));
    case "enrollment does not survive re-arm" (fun () ->
        Inject.arm
          { Inject.seed = 8; rules_for = (fun _ -> [ Inject.rule Inject.Crash ]) };
        Inject.enroll ~slot:0;
        (* New plan: the old enrollment must be invalidated, so this hit
           must not crash even though the new plan also crashes slot 0. *)
        Inject.arm
          { Inject.seed = 9; rules_for = (fun _ -> [ Inject.rule Inject.Crash ]) };
        Inject.hit Site.Find_hop;
        check Alcotest.int "no crash" 0 (Inject.totals ()).Inject.crashes;
        Inject.disarm ());
    case "negative slot rejected" (fun () ->
        with_plan
          { Inject.seed = 10; rules_for = (fun _ -> []) }
          (fun () ->
            try
              Inject.enroll ~slot:(-1);
              Alcotest.fail "expected Invalid_argument"
            with Invalid_argument _ -> ()));
  ]

(* ---------------------------------------------------------- armed sites *)

(* The MakeSet extensions and the ranked variant carry their own fault
   sites: prove each site is actually wired by crashing at it, and that
   the structure tolerates the abandoned operation. *)

let crash_at sites =
  { Inject.seed = 20; rules_for = (fun _ -> [ Inject.rule ~sites Inject.Crash ]) }

let armed_site_tests =
  [
    case "growable make_set crashes at Make_set_publish, slot stays usable"
      (fun () ->
        let d = Dsu.Growable.create ~capacity:8 () in
        let a = Dsu.Growable.make_set d in
        with_plan
          (crash_at [ Site.Make_set_publish ])
          (fun () ->
            Inject.enroll ~slot:0;
            (try
               ignore (Dsu.Growable.make_set d : int);
               Alcotest.fail "expected Crashed"
             with Inject.Crashed (site, _) ->
               check Alcotest.bool "site" true (site = Site.Make_set_publish)));
        (* The crash abandoned the publish after the slot was claimed: a
           fresh make_set must still work and the earlier element must
           still answer queries. *)
        let b = Dsu.Growable.make_set d in
        check Alcotest.bool "fresh element distinct" false
          (Dsu.Growable.same_set d a b);
        Dsu.Growable.unite d a b;
        check Alcotest.bool "united" true (Dsu.Growable.same_set d a b));
    case "unbounded make_set crashes at a chunk-publish site" (fun () ->
        let d = Dsu.Growable_unbounded.create ~chunk_size:2 () in
        ignore (Dsu.Growable_unbounded.make_set d : int);
        ignore (Dsu.Growable_unbounded.make_set d : int);
        with_plan
          (crash_at [ Site.Chunk_publish_pre; Site.Chunk_publish_post ])
          (fun () ->
            Inject.enroll ~slot:0;
            (* The third make_set must grow a new chunk and hit a publish
               site on the way. *)
            try
              ignore (Dsu.Growable_unbounded.make_set d : int);
              Alcotest.fail "expected Crashed"
            with Inject.Crashed (site, _) ->
              check Alcotest.bool "publish site" true
                (site = Site.Chunk_publish_pre || site = Site.Chunk_publish_post));
        (* Growth still works after the abandoned publish. *)
        let x = Dsu.Growable_unbounded.make_set d in
        let y = Dsu.Growable_unbounded.make_set d in
        Dsu.Growable_unbounded.unite d x y;
        check Alcotest.bool "united" true (Dsu.Growable_unbounded.same_set d x y));
    case "ranked unite crashes at Rank_read, forest stays valid" (fun () ->
        let d = Dsu.Rank.Native.create 32 in
        with_plan
          (crash_at [ Site.Rank_read ])
          (fun () ->
            Inject.enroll ~slot:0;
            try
              Dsu.Rank.Native.unite d 0 1;
              Alcotest.fail "expected Crashed"
            with Inject.Crashed (site, _) ->
              check Alcotest.bool "site" true (site = Site.Rank_read));
        (* The abandoned unite installed at most one CAS: re-running it
           completes, and the forest validates under the rank order. *)
        Dsu.Rank.Native.unite d 0 1;
        check Alcotest.bool "united" true (Dsu.Rank.Native.same_set d 0 1);
        let r =
          Forest_check.check
            ~prio:(Dsu.Rank.Native.rank_of d)
            (Dsu.Rank.Native.parents_snapshot d)
        in
        check Alcotest.bool "forest ok" true (Forest_check.ok r));
  ]

(* ---------------------------------------------------------- tuned path *)

(* The memory-order-tuned hot path (relaxed/acquire loads, weak split
   CAS, link backoff) reuses the instrumented twins, so every fault site
   must keep firing when the structure is created with
   [~memory_order:Relaxed_reads] — including inside the bulk kernels.
   These are regression tests against the tuning silently bypassing
   injection. *)

let tuned_create ?(n = 256) ~seed () =
  Dsu.Native.create ~memory_order:Dsu.Memory_order.Relaxed_reads ~seed n

let tuned_site_tests =
  [
    case "tuned path still counts Find_hop hits" (fun () ->
        let d = tuned_create ~seed:31 () in
        with_plan
          { Inject.seed = 30; rules_for = (fun _ -> []) }
          (fun () ->
            Inject.enroll ~slot:0;
            let rng = Repro_util.Rng.create 7 in
            for _ = 1 to 300 do
              Dsu.Native.unite d (Repro_util.Rng.int rng 256)
                (Repro_util.Rng.int rng 256)
            done;
            for i = 0 to 255 do
              ignore (Dsu.Native.find d i : int)
            done;
            check Alcotest.bool "hits recorded" true
              ((Inject.totals ()).Inject.hits > 0);
            check Alcotest.bool "hops recorded" true (Inject.my_hops () > 0)));
    case "split CAS sites still crash the tuned find" (fun () ->
        let d = tuned_create ~seed:33 () in
        (* Build depth while disarmed so the crash plan only sees finds. *)
        let rng = Repro_util.Rng.create 9 in
        for _ = 1 to 400 do
          Dsu.Native.unite d (Repro_util.Rng.int rng 256)
            (Repro_util.Rng.int rng 256)
        done;
        with_plan
          (crash_at [ Site.Split_cas_pre; Site.Split_cas_post ])
          (fun () ->
            Inject.enroll ~slot:0;
            let crashed = ref false in
            (try
               for i = 0 to 255 do
                 ignore (Dsu.Native.find d i : int)
               done
             with Inject.Crashed (site, _) ->
               crashed := true;
               check Alcotest.bool "split site" true
                 (site = Site.Split_cas_pre || site = Site.Split_cas_post));
            check Alcotest.bool "a split fired" true !crashed);
        (* The abandoned split is harmless: queries and the forest audit
           still pass. *)
        for i = 0 to 255 do
          ignore (Dsu.Native.find d i : int)
        done;
        let r =
          Forest_check.check ~prio:(Dsu.Native.id d)
            (Dsu.Native.parents_snapshot d)
        in
        check Alcotest.bool "forest ok" true (Forest_check.ok r));
    case "Link_cas_pre still crashes inside unite_batch" (fun () ->
        let d = tuned_create ~seed:35 () in
        let xs = Array.init 128 (fun i -> i) in
        let ys = Array.init 128 (fun i -> i + 128) in
        with_plan
          (crash_at [ Site.Link_cas_pre ])
          (fun () ->
            Inject.enroll ~slot:0;
            try
              Dsu.Native.unite_batch d xs ys;
              Alcotest.fail "expected Crashed"
            with Inject.Crashed (site, _) ->
              check Alcotest.bool "link site" true (site = Site.Link_cas_pre));
        (* Re-running the abandoned batch disarmed completes it. *)
        Dsu.Native.unite_batch d xs ys;
        for i = 0 to 127 do
          check Alcotest.bool "pair united" true
            (Dsu.Native.same_set d xs.(i) ys.(i))
        done;
        let r =
          Forest_check.check ~prio:(Dsu.Native.id d)
            (Dsu.Native.parents_snapshot d)
        in
        check Alcotest.bool "forest ok" true (Forest_check.ok r));
    case "same_set_batch traversals still count Find_hop" (fun () ->
        let d = tuned_create ~seed:37 () in
        let rng = Repro_util.Rng.create 11 in
        for _ = 1 to 300 do
          Dsu.Native.unite d (Repro_util.Rng.int rng 256)
            (Repro_util.Rng.int rng 256)
        done;
        let xs = Array.init 128 (fun i -> i) in
        let ys = Array.init 128 (fun i -> 255 - i) in
        with_plan
          { Inject.seed = 36; rules_for = (fun _ -> []) }
          (fun () ->
            Inject.enroll ~slot:0;
            ignore (Dsu.Native.same_set_batch d xs ys : bool array);
            check Alcotest.bool "hops recorded" true (Inject.my_hops () > 0)));
  ]

(* --------------------------------------------------------- Forest_check *)

let violations r = List.length r.Forest_check.violations

let forest_tests =
  [
    case "valid forest passes" (fun () ->
        (* 0 -> 2, 1 -> 2, 2 root; 3 -> 4, 4 root *)
        let r = Forest_check.check [| 2; 2; 2; 4; 4 |] in
        check Alcotest.bool "ok" true (Forest_check.ok r);
        check Alcotest.int "roots" 2 r.Forest_check.roots;
        check Alcotest.int "max depth" 1 r.Forest_check.max_depth);
    case "empty forest passes" (fun () ->
        check Alcotest.bool "ok" true (Forest_check.ok (Forest_check.check [||])));
    case "seeded 2-cycle is detected" (fun () ->
        let r = Forest_check.check [| 1; 0; 2 |] in
        check Alcotest.bool "not ok" false (Forest_check.ok r);
        check Alcotest.bool "reports a cycle" true
          (List.exists
             (function Forest_check.Cycle _ -> true | _ -> false)
             r.Forest_check.violations));
    case "seeded long cycle is detected with its members" (fun () ->
        (* 2 -> 3 -> 4 -> 2, plus 0,1 hanging off the cycle *)
        let r = Forest_check.check ~prio:(fun _ -> 0) [| 2; 2; 3; 4; 2 |] in
        check Alcotest.bool "not ok" false (Forest_check.ok r);
        let cyc =
          List.find_map
            (function Forest_check.Cycle c -> Some c | _ -> None)
            r.Forest_check.violations
        in
        match cyc with
        | None -> Alcotest.fail "no cycle reported"
        | Some members ->
          check Alcotest.int "cycle length" 3 (List.length members);
          List.iter
            (fun m -> check Alcotest.bool "member" true (List.mem m [ 2; 3; 4 ]))
            members);
    case "priority-order violation is detected" (fun () ->
        (* parent 0 has lower priority than child 1 *)
        let r = Forest_check.check [| 0; 0 |] ~prio:(fun i -> [| 5; 9 |].(i)) in
        check Alcotest.bool "not ok" false (Forest_check.ok r);
        check Alcotest.bool "order violation" true
          (List.exists
             (function
               | Forest_check.Order { node = 1; parent = 0 } -> true
               | _ -> false)
             r.Forest_check.violations));
    case "out-of-range parent is detected" (fun () ->
        let r = Forest_check.check [| 7 |] in
        check Alcotest.bool "not ok" false (Forest_check.ok r);
        check Alcotest.int "one violation" 1 (violations r));
    case "quiescent native forest validates" (fun () ->
        let d = Dsu.Native.create ~seed:42 256 in
        let rng = Repro_util.Rng.create 17 in
        for _ = 1 to 400 do
          Dsu.Native.unite d
            (Repro_util.Rng.int rng 256)
            (Repro_util.Rng.int rng 256)
        done;
        let r =
          Forest_check.check ~prio:(Dsu.Native.id d) (Dsu.Native.parents_snapshot d)
        in
        check Alcotest.bool "ok" true (Forest_check.ok r));
    case "json shape" (fun () ->
        let r = Forest_check.check [| 1; 0 |] in
        match Forest_check.to_json r with
        | Repro_obs.Json.Obj fields ->
          check Alcotest.bool "has violations key" true
            (List.mem_assoc "violations" fields)
        | _ -> Alcotest.fail "expected an object");
  ]

(* ---------------------------------------------------------------- Chaos *)

(* Scaled-down but structurally faithful scenarios: enough ops that every
   planned crash countdown is reached, small enough for the test suite. *)
let chaos_config =
  {
    Chaos.default_config with
    Chaos.n = 512;
    ops_per_domain = 4_000;
    domains = 8;
    crash_domains = 2;
    crash_after = 500;
    stall_prob = 0.02;
    stall_len = 16;
  }

let chaos_tests =
  [
    case "2-of-8 crash demo: survivors finish, audit passes" (fun () ->
        let s =
          Chaos.run_scenario ~config:chaos_config ~layout:Harness.Scalability.Flat
            ~policy:Dsu.Find_policy.Two_try_splitting ()
        in
        check Alcotest.int "both victims crashed" 2 (List.length s.Chaos.crashed);
        List.iter
          (fun (slot, _) -> check Alcotest.bool "victim slot" true (slot < 2))
          s.Chaos.crashed;
        check Alcotest.bool "no unexpected failures" true (s.Chaos.failures = []);
        check Alcotest.bool "scenario ok" true (Chaos.scenario_ok s);
        check Alcotest.bool "checks ran" true (List.length s.Chaos.checks >= 8);
        check Alcotest.bool "forest reported" true (s.Chaos.forest <> None);
        check Alcotest.bool "crashes counted" true
          (s.Chaos.fault_totals.Inject.crashes >= 2));
    case "crash-free scenario completes everything" (fun () ->
        let config =
          { chaos_config with Chaos.crash_domains = 0; domains = 4; ops_per_domain = 2_000 }
        in
        let s =
          Chaos.run_scenario ~config ~layout:Harness.Scalability.Flat
            ~policy:Dsu.Find_policy.One_try_splitting ()
        in
        check Alcotest.bool "nobody crashed" true (s.Chaos.crashed = []);
        Array.iter
          (fun c -> check Alcotest.int "all ops done" 2_000 c)
          s.Chaos.completed;
        check Alcotest.bool "scenario ok" true (Chaos.scenario_ok s));
    case "boxed layout passes the same audit" (fun () ->
        let config = { chaos_config with Chaos.ops_per_domain = 2_000; domains = 4; crash_domains = 1; crash_after = 300 } in
        let s =
          Chaos.run_scenario ~config ~layout:Harness.Scalability.Boxed
            ~policy:Dsu.Find_policy.Two_try_splitting ()
        in
        check Alcotest.bool "scenario ok" true (Chaos.scenario_ok s));
    case "validate:false skips the audit" (fun () ->
        let config =
          { chaos_config with Chaos.validate = false; domains = 2; crash_domains = 0; ops_per_domain = 500 }
        in
        let s =
          Chaos.run_scenario ~config ~layout:Harness.Scalability.Flat
            ~policy:Dsu.Find_policy.Two_try_splitting ()
        in
        check Alcotest.bool "no checks" true (s.Chaos.checks = []);
        check Alcotest.bool "no forest" true (s.Chaos.forest = None));
    case "chaos json is well-formed and self-consistent" (fun () ->
        let config =
          { chaos_config with Chaos.domains = 4; crash_domains = 1; ops_per_domain = 1_500; crash_after = 200 }
        in
        let scenarios = Chaos.run_all ~config () in
        let json = Chaos.to_json ~config scenarios in
        let reparsed = Repro_obs.Json.parse_exn (Repro_obs.Json.to_string json) in
        (match Repro_obs.Json.member "schema" reparsed with
        | Some (Repro_obs.Json.String s) ->
          check Alcotest.string "schema" "dsu-chaos/v1" s
        | _ -> Alcotest.fail "missing schema");
        match Repro_obs.Json.member "ok" reparsed with
        | Some (Repro_obs.Json.Bool ok) ->
          check Alcotest.bool "ok agrees" (List.for_all Chaos.scenario_ok scenarios) ok
        | _ -> Alcotest.fail "missing ok");
    case "invalid configs rejected" (fun () ->
        let bad config =
          try
            ignore
              (Chaos.run_scenario ~config ~layout:Harness.Scalability.Flat
                 ~policy:Dsu.Find_policy.Two_try_splitting ());
            false
          with Invalid_argument _ -> true
        in
        check Alcotest.bool "domains 0" true
          (bad { chaos_config with Chaos.domains = 0 });
        check Alcotest.bool "crash > domains" true
          (bad { chaos_config with Chaos.crash_domains = 99 });
        check Alcotest.bool "stall_prob > 1" true
          (bad { chaos_config with Chaos.stall_prob = 1.5 }));
  ]

let () =
  Alcotest.run "fault"
    [
      ("site", site_tests);
      ("inject", inject_tests);
      ("armed_sites", armed_site_tests);
      ("tuned_sites", tuned_site_tests);
      ("forest_check", forest_tests);
      ("chaos", chaos_tests);
    ]
