The experiment registry lists all eighteen experiments:

  $ ../../bin/experiments.exe list | grep -c '^e'
  18

Unknown experiment ids are rejected:

  $ ../../bin/experiments.exe run nope
  unknown experiment(s): nope
  [1]

The workload driver's simulator mode is deterministic:

  $ ../../bin/dsu_workload.exe sim -n 64 --ops 128 --procs 2 --seed 9 --sched round-robin | head -3
  elements:      64
  operations:    128 on 2 processes (round-robin schedule)
  total work:    812 shared-memory steps (6.34/op)

The linearizability fuzzer passes:

  $ ../../bin/dsu_workload.exe lincheck --trials 5 --procs 2 --ops-per-proc 2
  25 histories checked, 0 violations

All native implementations agree on the final partition of the same
single-domain workload:

  $ for impl in seq jt jt-early rank aw lock; do
  >   ../../bin/dsu_workload.exe native --impl $impl -n 128 --ops 256 --seed 4 | grep 'final sets'
  > done
  final sets:    19
  final sets:    19
  final sets:    19
  final sets:    19
  final sets:    19
  final sets:    19

Policies parse, including the Section 6 compression conjecture:

  $ ../../bin/dsu_workload.exe sim -n 32 --ops 64 --procs 2 --seed 1 --policy compression | grep operations
  operations:    64 on 2 processes (random schedule)
