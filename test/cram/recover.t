A workload can be checkpointed and restored, round-tripping the forest:

  $ ../../bin/dsu_workload.exe snapshot -n 64 --ops 200 --seed 3 \
  >   --snapshot-out a.snap
  snapshot: 64 elements, 5 sets, crc e16f063e -> a.snap

  $ ../../bin/dsu_workload.exe restore --resume-from a.snap --validate
  restored: flat snapshot, 64 elements, 5 sets
  validate: ok (5 roots, max depth 3)

The restored structure accepts new operations and can be re-snapshotted,
in either encoding; a JSON snapshot loads back the same way:

  $ ../../bin/dsu_workload.exe restore --resume-from a.snap --ops 100 \
  >   --domains 2 --seed 9 --snapshot-out b.snap --format json
  restored: flat snapshot, 64 elements, 5 sets
  resumed:  100 ops on 2 domain(s), 2 sets
  snapshot: -> b.snap

  $ grep -c '"schema":"dsu-snapshot/v2"' b.snap
  1

  $ ../../bin/dsu_workload.exe restore --resume-from b.snap --validate | head -1
  restored: flat snapshot, 64 elements, 2 sets

A flipped byte in the body fails the checksum and exits with the CLI
error status, as does a truncated file:

  $ printf 'X' | dd of=a.snap bs=1 seek=20 conv=notrunc 2> /dev/null
  $ ../../bin/dsu_workload.exe restore --resume-from a.snap
  dsu_workload: cannot load a.snap: checksum mismatch: stored e16f063e, computed e48e9e8a
  [124]

  $ ../../bin/dsu_workload.exe snapshot -n 64 --ops 200 --seed 3 \
  >   --snapshot-out a.snap > /dev/null
  $ head -c 12 a.snap > short.snap
  $ ../../bin/dsu_workload.exe restore --resume-from short.snap
  dsu_workload: cannot load short.snap: snapshot file truncated
  [124]

A snapshot whose checksum is honest but whose forest is corrupted (the
--corrupt testing hook plants a parent cycle) is rejected on restore;
--repair fixes it, and the repaired forest validates:

  $ ../../bin/dsu_workload.exe snapshot -n 16 --ops 50 --seed 3 \
  >   --snapshot-out c.snap --corrupt > /dev/null
  $ ../../bin/dsu_workload.exe restore --resume-from c.snap
  dsu_workload: Dsu_native.restore: parents violate the linking order (a corrupted snapshot may need --repair)
  [124]

  $ ../../bin/dsu_workload.exe restore --resume-from c.snap --repair --validate
  repair: order: parent(1) 0 -> 1
  repair: cycle: parent(0) 1 -> 0
  restored: flat snapshot, 16 elements, 3 sets
  validate: ok (3 roots, max depth 2)

The chaos harness's full recovery drill — crash, snapshot, repair,
resume, re-audit — passes and archives the crash-time snapshot, which
restores like any other:

  $ ../../bin/dsu_workload.exe chaos -n 512 --ops 2000 --domains 4 \
  >   --crash-domains 2 --crash-after 500 --seed 11 --fault-seed 7 \
  >   --recover --snapshot-out crash | tail -2
  snapshot: -> crash-flat-two-try.snap
  chaos: 1 scenario(s) with recovery, all checks passed

  $ ../../bin/dsu_workload.exe restore --resume-from crash-flat-two-try.snap \
  >   --validate | head -1
  restored: flat snapshot, 512 elements, 1 sets
