The chaos harness runs a crash scenario, audits it, and reports success:

  $ ../../bin/dsu_workload.exe chaos -n 512 --ops 3000 --domains 4 \
  >   --crash-domains 1 --crash-after 400 --seed 11 --fault-seed 7 \
  >   --validate | tail -1
  chaos: 1 scenario(s), all checks passed

The victim is one of the planned slots and the crash is counted:

  $ ../../bin/dsu_workload.exe chaos -n 512 --ops 3000 --domains 4 \
  >   --crash-domains 1 --crash-after 400 --seed 11 --fault-seed 7 \
  >   --validate | grep -c 'crashed: slot 0'
  1

The dsu-chaos/v1 JSON report is written and well-formed enough to grep:

  $ ../../bin/dsu_workload.exe chaos -n 256 --ops 1500 --domains 4 \
  >   --crash-domains 1 --crash-after 300 --json chaos.json > /dev/null
  $ grep -c '"schema":"dsu-chaos/v1"' chaos.json
  1
  $ grep -c '"ok":true' chaos.json
  1

A crash-free run with the audit disabled still reports the scenario:

  $ ../../bin/dsu_workload.exe chaos -n 256 --ops 1000 --domains 2 \
  >   --crash-domains 0 --no-validate | tail -1
  chaos: 1 scenario(s), all checks passed

Bad flag combinations are reported as CLI errors, not backtraces:

  $ ../../bin/dsu_workload.exe chaos --crash-domains 99
  dsu_workload: --crash-domains must be between 0 and --domains
  [124]

  $ ../../bin/dsu_workload.exe native --domains 0
  dsu_workload: --domains must be >= 1
  [124]

  $ ../../bin/dsu_workload.exe native --impl seq --domains 2
  dsu_workload: --impl seq is single-threaded; use --domains 1
  [124]

The simulator's crash-stop scheduler reports the killed pids:

  $ ../../bin/dsu_workload.exe sim -n 128 --ops 600 --procs 4 --seed 3 \
  >   --sched crash:0,1:200 | grep crashed
  crashed:       0, 1 (in-flight ops abandoned)

  $ ../../bin/dsu_workload.exe sim --sched crash:9:100 --procs 2
  dsu_workload: crash victims must be pids in [0, procs)
  [124]

The stall-storm scheduler still lets every operation finish:

  $ ../../bin/dsu_workload.exe sim -n 64 --ops 200 --procs 3 --seed 5 \
  >   --sched stall-storm:30:6 | grep operations
  operations:    200 on 3 processes (stall-storm-30 schedule)
