Connectivity-as-a-service: the serve subcommand drives a multi-domain
DSU server open-loop and emits the versioned dsu-service/v1 document
(docs/ROBUSTNESS.md).  Timing numbers are host-dependent, so the checks
pin schema, structure, and the accounting invariants only.

  $ ../../bin/dsu_workload.exe serve -n 256 --ops 300 --gens 1 --workers 1 \
  >   --arrival-rate 100000 --shape fixed --queue-capacity 32 \
  >   --json serve.json | head -1
  serving sweep (open-loop, intended-start accounting)

  $ grep -o '"schema":"dsu-service/v1"' serve.json
  "schema":"dsu-service/v1"
  $ grep -o '"admission":"reject"' serve.json
  "admission":"reject"
  $ grep -o '"knee_rate"' serve.json
  "knee_rate"

Backpressure accounting is part of the document: queue depth stays
bounded by the configured capacity, and every accepted op is accounted
for (acked + shed + timed_out + failed + lost = accepted — nothing is
silently dropped after admission):

  $ grep -o '"depth_bound_ok":true' serve.json
  "depth_bound_ok":true
  $ grep -o '"accounted_ok":true' serve.json
  "accounted_ok":true

Admission policies parse, including the block-with-deadline form:

  $ ../../bin/dsu_workload.exe serve -n 128 --ops 100 --gens 1 --workers 1 \
  >   --arrival-rate 100000 --admission shed-oldest --json - | grep -o '"admission":"shed-oldest"'
  "admission":"shed-oldest"
  $ ../../bin/dsu_workload.exe serve -n 128 --ops 100 --gens 1 --workers 1 \
  >   --arrival-rate 100000 --admission block:2 --json - | grep -o '"admission":"block:2"'
  "admission":"block:2"

A self-diff of the serving document is exactly clean (1 point x 3
metrics = 3 comparisons):

  $ ../../bin/dsu_workload.exe perfdiff --baseline serve.json --current serve.json
  perfdiff (dsu-service/v1, threshold 10.0%): 3 compared, 0 regressions, 0 improvements

Bad flags are Cmdliner errors (one-line diagnostic, CLI-error exit
status), never raw exceptions or backtraces:

  $ ../../bin/dsu_workload.exe serve -n 1 2>&1 | grep -c Fatal
  0
  [1]
  $ ../../bin/dsu_workload.exe serve -n 1
  dsu_workload: --elements must be >= 2
  [124]
  $ ../../bin/dsu_workload.exe serve --workers 0
  dsu_workload: --workers must be >= 1
  [124]
  $ ../../bin/dsu_workload.exe serve --queue-capacity 0
  dsu_workload: --queue-capacity must be >= 1
  [124]
  $ ../../bin/dsu_workload.exe serve --arrival-rate 0
  dsu_workload: --arrival-rate must be positive
  [124]
  $ ../../bin/dsu_workload.exe serve --unite-frac 0.9 --find-frac 0.9
  dsu_workload: --unite-frac and --find-frac must be nonnegative and sum to <= 1
  [124]
  $ ../../bin/dsu_workload.exe serve --admission sometimes 2>&1 | grep -o "unknown admission policy"
  unknown admission policy
  $ ../../bin/dsu_workload.exe serve --admission sometimes > /dev/null 2>&1
  [124]
  $ ../../bin/dsu_workload.exe serve --kind marble 2>&1 | grep -o "unknown snapshot kind"
  unknown snapshot kind
