The native workload driver emits the metrics registry as JSON lines when
asked (--metrics-out -; the trailing dsu_stats object carries the flat
Dsu.Stats counters).  Numeric values are timing-dependent, so the test
checks the schema: every expected metric name with its type, every line
valid JSON, and no negative values anywhere.

  $ ../../bin/dsu_workload.exe native -n 256 --ops 512 --seed 3 --metrics-out - | grep '^{' > metrics.jsonl
  $ sed -E 's/^\{"name":"([a-z_0-9]+)","type":"([a-z]+)".*/\1 \2/' metrics.jsonl
  apram_procs gauge
  apram_runnable_procs gauge
  apram_sched_decisions_total counter
  apram_steps_per_process histogram
  apram_steps_total counter
  dsu_compaction_cas_fail_total counter
  dsu_compaction_cas_ok_total counter
  dsu_find_iters histogram
  dsu_find_latency_ns histogram
  dsu_find_total counter
  dsu_link_cas_fail_total counter
  dsu_link_cas_ok_total counter
  dsu_ops_total counter
  dsu_outer_retries_total counter
  dsu_same_set_latency_ns histogram
  dsu_unite_latency_ns histogram
  fault_crashes_total counter
  fault_site_hits_total counter
  fault_stalls_total counter
  fault_yields_total counter
  dsu_stats object

Every histogram line carries the quantile summary:

  $ grep -c '"p50"' metrics.jsonl
  5
  $ [ "$(grep -c '"p50"' metrics.jsonl)" -eq "$(grep -c '"p99"' metrics.jsonl)" ] && echo balanced
  balanced

No negative values in any line (grep finds nothing and exits 1):

  $ grep -- '-[0-9]' metrics.jsonl
  [1]

The single-domain run is deterministic, so the CAS counters in the
registry agree exactly with the Dsu.Stats counters on the same line
ordering every run — spot-check that the link counter is non-zero:

  $ grep '"name":"dsu_link_cas_ok_total"' metrics.jsonl | grep -c '"value":0'
  0
  [1]

The Chrome trace exporter produces a JSON array of objects with the
trace_event fields:

  $ ../../bin/dsu_workload.exe native -n 64 --ops 64 --seed 3 --trace-out trace.json > /dev/null
  $ head -c 2 trace.json
  [{
  $ grep -c '"ph":' trace.json
  1
  $ grep -o '"name":"find","ph":"B"' trace.json | head -1
  "name":"find","ph":"B"
