Open-loop latency sweep: the latency subcommand drives deterministic
arrival schedules against the native DSU and writes the versioned
dsu-latency/v1 document (docs/OBSERVABILITY.md).  Timing numbers are
host-dependent, so the checks pin schema and structure only.

  $ ../../bin/dsu_workload.exe latency -n 256 --ops 200 --domains 1 \
  >   --arrival-rate 200000 --shape fixed --reservoir 32 \
  >   --latency-out latency.json | head -1
  open-loop latency (ns, intended-start accounting)

  $ grep -o '"schema":"dsu-latency/v1"' latency.json
  "schema":"dsu-latency/v1"
  $ grep -o '"shape":"fixed"' latency.json
  "shape":"fixed"

One sweep point records both distributions — open-loop latency
(completion minus intended start) and closed-loop service time — each
with the p999-grade quantile summary, plus the saturation knee:

  $ grep -o '"p999_ns"' latency.json | wc -l
  2
  $ grep -o '"knee_rate"' latency.json
  "knee_rate"

No negative values anywhere in the document:

  $ grep ':-' latency.json
  [1]

--arrival-rate repeats to sweep several offered rates (one point each):

  $ ../../bin/dsu_workload.exe latency -n 128 --ops 100 --domains 1 \
  >   --arrival-rate 100000 --arrival-rate 400000 \
  >   --latency-out sweep.json > /dev/null
  $ grep -o '"arrival_rate_per_gen"' sweep.json | wc -l
  2

The perfdiff subcommand diffs two documents of the same kind; a
self-diff is exactly clean (2 points x 3 metrics = 6 comparisons):

  $ ../../bin/dsu_workload.exe perfdiff --baseline sweep.json --current sweep.json
  perfdiff (dsu-latency/v1, threshold 10.0%): 6 compared, 0 regressions, 0 improvements

  $ ../../bin/dsu_workload.exe perfdiff --baseline sweep.json \
  >   --current sweep.json --json diff.json > /dev/null
  $ grep -o '"schema":"dsu-perfdiff/v1"' diff.json
  "schema":"dsu-perfdiff/v1"

--fail-on-regression keeps exit 0 when nothing regressed:

  $ ../../bin/dsu_workload.exe perfdiff --baseline sweep.json \
  >   --current sweep.json --fail-on-regression > /dev/null

latency --baseline runs the same differ against a stored document
(deltas vary with host timing, so only the report header is checked):

  $ ../../bin/dsu_workload.exe latency -n 128 --ops 100 --domains 1 \
  >   --arrival-rate 300000 --baseline sweep.json | grep -c '^perfdiff'
  1

Structural problems are CLI errors, not backtraces:

  $ echo '{ oops' > bad.json
  $ ../../bin/dsu_workload.exe latency -n 64 --ops 50 --domains 1 \
  >   --arrival-rate 500000 --baseline bad.json > /dev/null
  dsu_workload: baseline: malformed JSON: expected '"' at offset 2
  [124]

  $ echo '{"results":[]}' > bech.json
  $ ../../bin/dsu_workload.exe perfdiff --baseline bech.json --current sweep.json
  dsu_workload: kind mismatch: baseline is bechamel, current is dsu-latency/v1
  [124]

Bad arguments are rejected up front:

  $ ../../bin/dsu_workload.exe latency --arrival-rate 0
  dsu_workload: --arrival-rate must be positive
  [124]
  $ ../../bin/dsu_workload.exe latency --shape sometimes
  dsu_workload: option '--shape': unknown arrival shape "sometimes"
  Usage: dsu_workload latency [OPTION]…
  Try 'dsu_workload latency --help' or 'dsu_workload --help' for more information.
  [124]
