A full plan spec pins the workload driver to one point of the plan space;
the packed by-rank plan agrees with every other implementation on the
final partition of the same single-domain workload:

  $ ../../bin/dsu_workload.exe native --plan rank:halving:relaxed-reads:on:packed -n 128 --ops 256 --seed 4 | grep 'final sets'
  final sets:    19

  $ ../../bin/dsu_workload.exe native --impl packed -n 128 --ops 256 --seed 4 | grep 'final sets'
  final sets:    19

Every layout the plan grammar names is runnable through --plan:

  $ for plan in rand:two-try:relaxed-reads:on:flat rand:one-try:seq-cst:off:flat-padded rand:compression:seq-cst:on:boxed rank:none:acquire:on:packed; do
  >   ../../bin/dsu_workload.exe native --plan $plan -n 64 --ops 128 --seed 7 | grep 'final sets'
  > done
  final sets:    17
  final sets:    17
  final sets:    17
  final sets:    17

A malformed plan spec is a CLI parse error (Cmdliner exit 124), naming the
grammar:

  $ ../../bin/dsu_workload.exe native --plan bogus -n 16 --ops 8
  dsu_workload: option '--plan': bad plan spec "bogus" (want
                linking:compaction:order:backoff:layout, e.g.
                "rand:two-try:relaxed-reads:on:flat")
  Usage: dsu_workload native [OPTION]…
  Try 'dsu_workload native --help' or 'dsu_workload --help' for more information.
  [124]

So is a structurally valid spec naming an invalid combination (the packed
word has no per-node random id, so it links by rank):

  $ ../../bin/dsu_workload.exe native --plan rand:two-try:relaxed-reads:on:packed -n 16 --ops 8
  dsu_workload: option '--plan': invalid plan
                "rand:two-try:relaxed-reads:on:packed": the packed layout links
                by rank; use rank:...:packed
  Usage: dsu_workload native [OPTION]…
  Try 'dsu_workload native --help' or 'dsu_workload --help' for more information.
  [124]

The bench CLI rejects a malformed spec too (stdlib Arg, exit 2):

  $ ../../bench/main.exe --plan nope 2>&1 | grep -c 'bad plan spec'
  1
  $ ../../bench/main.exe --plan nope >/dev/null 2>&1
  [2]
