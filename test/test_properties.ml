(* Property-based tests (qcheck, registered through QCheck_alcotest):
   randomized invariants over the core data structures. *)

module Q = QCheck2
module Native = Dsu.Native
module Policy = Dsu.Find_policy
module Quick_find = Sequential.Quick_find
module Seq = Sequential.Seq_dsu
module Rng = Repro_util.Rng

(* Generator for a random operation list over n nodes. *)
let gen_ops n =
  Q.Gen.(
    list_size (int_range 0 120)
      (let* x = int_range 0 (n - 1) in
       let* y = int_range 0 (n - 1) in
       let* kind = int_range 0 2 in
       return
         (match kind with
         | 0 -> Workload.Op.Unite (x, y)
         | 1 -> Workload.Op.Same_set (x, y)
         | _ -> Workload.Op.Find x)))

let print_ops ops =
  String.concat "; " (List.map (Format.asprintf "%a" Workload.Op.pp) ops)

let partition_of_quick_find ops n =
  let q = Quick_find.create n in
  Workload.Op.run_quick_find q ops;
  q

let n_nodes = 24

(* Each property is a QCheck test converted to an alcotest case. *)
let prop name ?(count = 200) gen print f =
  QCheck_alcotest.to_alcotest (Q.Test.make ~name ~count ~print gen f)

let native_matches_oracle (policy, early) =
  prop
    (Printf.sprintf "native %s%s matches quick-find" (Policy.to_string policy)
       (if early then "+early" else ""))
    (gen_ops n_nodes) print_ops
    (fun ops ->
      let d = Native.create ~policy ~early ~seed:11 n_nodes in
      let q = Quick_find.create n_nodes in
      List.for_all
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) ->
            Native.unite d x y;
            Quick_find.unite q x y;
            true
          | Workload.Op.Same_set (x, y) ->
            Native.same_set d x y = Quick_find.same_set q x y
          | Workload.Op.Find x -> Quick_find.same_set q x (Native.find d x))
        ops
      && Native.count_sets d = Quick_find.count_sets q)

let seq_matches_oracle (linking, compaction) =
  prop
    (Printf.sprintf "seq %s/%s matches quick-find" (Seq.linking_to_string linking)
       (Seq.compaction_to_string compaction))
    ~count:100 (gen_ops n_nodes) print_ops
    (fun ops ->
      let d = Seq.create ~linking ~compaction ~seed:7 n_nodes in
      let q = Quick_find.create n_nodes in
      List.for_all
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) ->
            Seq.unite d x y;
            Quick_find.unite q x y;
            true
          | Workload.Op.Same_set (x, y) -> Seq.same_set d x y = Quick_find.same_set q x y
          | Workload.Op.Find x -> Quick_find.same_set q x (Seq.find d x))
        ops)

let invariant_after_ops =
  prop "id-monotone parents hold after any op sequence (Lemma 3.1)"
    (gen_ops n_nodes) print_ops
    (fun ops ->
      List.for_all
        (fun policy ->
          let d = Native.create ~policy ~seed:13 n_nodes in
          Workload.Op.run_native d ops;
          Native.invariant_violations d = [])
        Policy.all)

let union_forest_heights =
  prop "union forest height bounded by n and links = n - sets"
    (gen_ops n_nodes) print_ops
    (fun ops ->
      let links = ref [] in
      let d =
        Native.create ~seed:17
          ~on_link:(fun ~child ~parent -> links := (child, parent) :: !links)
          n_nodes
      in
      Workload.Op.run_native d ops;
      let f = Harness.Forest.of_links ~n:n_nodes !links in
      Harness.Forest.height f < n_nodes
      && List.length !links = n_nodes - Native.count_sets d)

let sim_partition_schedule_independent =
  prop "simulated partition equals oracle partition under random schedules"
    ~count:100
    Q.Gen.(pair (gen_ops 12) (int_range 0 1000))
    (fun (ops, seed) -> Printf.sprintf "seed=%d ops=[%s]" seed (print_ops ops))
    (fun (ops, seed) ->
      let n = 12 in
      let split = Workload.Op.round_robin ops ~p:3 in
      let r =
        Harness.Measure.run_sim
          ~sched:(Apram.Scheduler.random ~seed)
          ~n ~seed:(seed + 1) ~ops:split ()
      in
      let spec = r.Harness.Measure.spec in
      let q = partition_of_quick_find ops n in
      Dsu.Sim.sets_of_memory spec r.Harness.Measure.memory = Quick_find.classes q)

let sim_histories_linearize =
  prop "simulated histories linearize (Theorem 3.4)" ~count:60
    Q.Gen.(pair (gen_ops 6) (int_range 0 500))
    (fun (ops, seed) -> Printf.sprintf "seed=%d ops=[%s]" seed (print_ops ops))
    (fun (ops, seed) ->
      let n = 6 in
      (* Keep histories small enough for the exact checker. *)
      let ops = List.filteri (fun i _ -> i < 12) ops in
      let split = Workload.Op.round_robin ops ~p:3 in
      let r =
        Harness.Measure.run_sim
          ~sched:(Apram.Scheduler.cas_adversary ~seed)
          ~n ~seed:(seed + 2) ~ops:split ()
      in
      match Lincheck.Checker.check ~n r.Harness.Measure.history with
      | Lincheck.Checker.Linearizable -> true
      | Lincheck.Checker.Not_linearizable _ -> false)

let rng_int_bounds =
  prop "rng ints respect arbitrary bounds"
    Q.Gen.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (bound, seed) -> Printf.sprintf "bound=%d seed=%d" bound seed)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let rng_permutation_property =
  prop "permutations are permutations"
    Q.Gen.(pair (int_range 1 300) (int_range 0 10_000))
    (fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
    (fun (n, seed) ->
      let p = Rng.permutation (Rng.create seed) n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n Fun.id)

let alpha_monotone =
  prop "ackermann is monotone in both arguments (small range)"
    Q.Gen.(pair (int_range 0 3) (int_range 0 8))
    (fun (k, j) -> Printf.sprintf "k=%d j=%d" k j)
    (fun (k, j) ->
      Repro_util.Alpha.ackermann k j <= Repro_util.Alpha.ackermann k (j + 1)
      && Repro_util.Alpha.ackermann k (max 1 j)
         <= Repro_util.Alpha.ackermann (k + 1) (max 1 j))

let stats_percentile_in_range =
  prop "percentiles lie within the sample range"
    Q.Gen.(
      pair
        (list_size (int_range 1 50) (float_bound_inclusive 1000.))
        (float_bound_inclusive 100.))
    (fun (xs, q) -> Printf.sprintf "n=%d q=%.2f" (List.length xs) q)
    (fun (xs, q) ->
      let arr = Array.of_list xs in
      let v = Repro_util.Stats.percentile arr q in
      let lo = Array.fold_left min arr.(0) arr in
      let hi = Array.fold_left max arr.(0) arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let binomial_single_set =
  prop "binomial schedule unites everything"
    Q.Gen.(int_range 0 8)
    string_of_int
    (fun log_k ->
      let k = 1 lsl log_k in
      let ops = Workload.Binomial.schedule ~base:0 ~k in
      let q = partition_of_quick_find ops k in
      Quick_find.count_sets q = 1 && List.length ops = k - 1)

let growable_matches_fixed =
  prop "growable behaves like fixed-size DSU" ~count:100 (gen_ops 16) print_ops
    (fun ops ->
      let g = Dsu.Growable.create ~capacity:16 ~seed:5 () in
      for _ = 1 to 16 do
        ignore (Dsu.Growable.make_set g)
      done;
      let q = Quick_find.create 16 in
      List.for_all
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) ->
            Dsu.Growable.unite g x y;
            Quick_find.unite q x y;
            true
          | Workload.Op.Same_set (x, y) ->
            Dsu.Growable.same_set g x y = Quick_find.same_set q x y
          | Workload.Op.Find x -> Quick_find.same_set q x (Dsu.Growable.find g x))
        ops)

let aw_matches_oracle =
  prop "anderson-woll matches quick-find" ~count:100 (gen_ops 20) print_ops
    (fun ops ->
      let d = Baselines.Anderson_woll.Native.create 20 in
      let q = Quick_find.create 20 in
      List.for_all
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) ->
            Baselines.Anderson_woll.Native.unite d x y;
            Quick_find.unite q x y;
            true
          | Workload.Op.Same_set (x, y) ->
            Baselines.Anderson_woll.Native.same_set d x y = Quick_find.same_set q x y
          | Workload.Op.Find x ->
            Quick_find.same_set q x (Baselines.Anderson_woll.Native.find d x))
        ops)

let rank_matches_oracle =
  prop "concurrent rank variant matches quick-find" ~count:150 (gen_ops 20)
    print_ops
    (fun ops ->
      let d = Dsu.Rank.Native.create 20 in
      let q = Quick_find.create 20 in
      List.for_all
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) ->
            Dsu.Rank.Native.unite d x y;
            Quick_find.unite q x y;
            true
          | Workload.Op.Same_set (x, y) ->
            Dsu.Rank.Native.same_set d x y = Quick_find.same_set q x y
          | Workload.Op.Find x -> Quick_find.same_set q x (Dsu.Rank.Native.find d x))
        ops)

let rank_heights_logarithmic =
  prop "rank forest height <= lg n for any union order" ~count:100
    (gen_ops 32) print_ops
    (fun ops ->
      let n = 32 in
      let d = Dsu.Rank.Native.create n in
      List.iter
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) -> Dsu.Rank.Native.unite d x y
          | Workload.Op.Same_set _ | Workload.Op.Find _ -> ())
        ops;
      let ok = ref true in
      for i = 0 to n - 1 do
        let u = ref i and depth = ref 0 in
        while Dsu.Rank.Native.parent_of d !u <> !u do
          u := Dsu.Rank.Native.parent_of d !u;
          incr depth
        done;
        if !depth > 5 then ok := false
      done;
      !ok)

let level_machinery_properties =
  prop "Section 5 level function: bounds, rank-equality zero, monotone in j"
    Q.Gen.(pair (int_range 0 20) (int_range 0 20))
    (fun (k, dj) -> Printf.sprintf "k=%d dj=%d" k dj)
    (fun (k, dj) ->
      let d = 1. in
      let j = k + dj in
      (* parent rank j >= node rank k, as in the data structure *)
      let a = Repro_util.Alpha.level ~d ~n:1024 k j in
      let bound = Repro_util.Alpha.alpha k d + 1 in
      (* (i): level within [0, alpha(k, d) + 1] *)
      a >= 0 && a <= bound
      (* (iv): level 0 iff ranks equal *)
      && (a = 0) = (j = k)
      (* monotone non-increasing... levels grow as the parent's rank grows *)
      && Repro_util.Alpha.level ~d ~n:1024 k (j + 1) >= 0)

let level_count_monotone =
  prop "Section 5 count x.c is monotone under parent-rank growth"
    Q.Gen.(pair (int_range 0 12) (int_range 0 12))
    (fun (k, j0) -> Printf.sprintf "k=%d j0=%d" k j0)
    (fun (k, j0) ->
      let d = 1. in
      let count j =
        let a = Repro_util.Alpha.level ~d ~n:1024 k j in
        let b = if a > 0 then Repro_util.Alpha.index (a - 1) k else 0 in
        (a * (k + 2)) + b
      in
      (* Property (ii): as the parent rank increases (what splitting does),
         the count never decreases. *)
      let j = k + j0 in
      count (j + 1) >= count j)

let explore_all_schedules_linearize =
  prop "every schedule of random 2-process pairs linearizes (full enumeration)"
    ~count:25
    Q.Gen.(
      let op = pair (int_range 0 3) (int_range 0 3) in
      pair (pair op op) (int_range 0 1000))
    (fun (((a, b), (c, d)), seed) ->
      Printf.sprintf "p0:(%d,%d) p1:(%d,%d) seed=%d" a b c d seed)
    (fun (((a, b), (c, d)), seed) ->
      let n = 4 in
      let spec = Dsu.Sim.spec ~n ~seed () in
      let make_ops () =
        let h = Dsu.Sim.handle spec in
        [|
          [ Dsu.Sim.unite_op h a b ];
          [ Dsu.Sim.same_set_op h c d ];
        |]
      in
      match
        Apram.Explore.run_all ~max_schedules:100_000 ~mem_size:n
          ~init:(Dsu.Sim.init spec) ~make_ops
          ~check:(fun o ->
            Lincheck.Checker.check ~n o.Apram.Sim.history
            = Lincheck.Checker.Linearizable)
          ()
      with
      | Ok s -> not s.Apram.Explore.truncated
      | Error _ -> false)

let checker_accepts_sequential =
  prop "checker accepts spec-generated sequential histories" ~count:100
    (gen_ops 6) print_ops
    (fun ops ->
      let ops = List.filteri (fun i _ -> i < 20) ops in
      let state = ref (Lincheck.Spec.initial 6) in
      let events =
        List.concat_map
          (fun op ->
            let spec_op =
              match op with
              | Workload.Op.Unite (x, y) -> Lincheck.Spec.Unite (x, y)
              | Workload.Op.Same_set (x, y) -> Lincheck.Spec.Same_set (x, y)
              | Workload.Op.Find x -> Lincheck.Spec.Find x
            in
            let state', result = Lincheck.Spec.apply !state spec_op in
            state := state';
            [
              Apram.History.Invoke
                { pid = 0; call = Lincheck.Spec.call_of_op spec_op; step = 0 };
              Apram.History.Return { pid = 0; value = result; step = 0 };
            ])
          ops
      in
      Lincheck.Checker.check ~n:6 events = Lincheck.Checker.Linearizable)

let tests =
  List.map native_matches_oracle
    (List.concat_map (fun p -> [ (p, false); (p, true) ]) Policy.all)
  @ List.map seq_matches_oracle
      [
        (Seq.By_size, Seq.Halving);
        (Seq.By_rank, Seq.Splitting);
        (Seq.By_random, Seq.Compression);
        (Seq.By_rank, Seq.No_compaction);
        (Seq.By_random, Seq.Splicing);
      ]
  @ [
      invariant_after_ops;
      union_forest_heights;
      sim_partition_schedule_independent;
      sim_histories_linearize;
      rng_int_bounds;
      rng_permutation_property;
      alpha_monotone;
      stats_percentile_in_range;
      binomial_single_set;
      growable_matches_fixed;
      aw_matches_oracle;
      rank_matches_oracle;
      rank_heights_logarithmic;
      explore_all_schedules_linearize;
      level_machinery_properties;
      level_count_monotone;
      checker_accepts_sequential;
    ]

let () = Alcotest.run "properties" [ ("qcheck", tests) ]
