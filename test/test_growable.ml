(* Tests for the MakeSet extension (Section 3 remark): on-the-fly element
   creation with randomly drawn priorities. *)

module Growable = Dsu.Growable

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let tests =
  [
    case "make_set returns consecutive slots" (fun () ->
        let g = Growable.create ~capacity:10 () in
        check Alcotest.int "first" 0 (Growable.make_set g);
        check Alcotest.int "second" 1 (Growable.make_set g);
        check Alcotest.int "third" 2 (Growable.make_set g);
        check Alcotest.int "cardinal" 3 (Growable.cardinal g));
    case "fresh elements are singletons" (fun () ->
        let g = Growable.create ~capacity:8 () in
        let a = Growable.make_set g and b = Growable.make_set g in
        check Alcotest.bool "distinct" false (Growable.same_set g a b);
        check Alcotest.bool "self" true (Growable.same_set g a a);
        check Alcotest.int "count" 2 (Growable.count_sets g));
    case "unite works on created elements" (fun () ->
        let g = Growable.create ~capacity:8 () in
        let a = Growable.make_set g in
        let b = Growable.make_set g in
        let c = Growable.make_set g in
        Growable.unite g a b;
        check Alcotest.bool "a~b" true (Growable.same_set g a b);
        check Alcotest.bool "a!~c" false (Growable.same_set g a c);
        Growable.unite g b c;
        check Alcotest.bool "a~c" true (Growable.same_set g a c);
        check Alcotest.int "count" 1 (Growable.count_sets g));
    case "capacity exhaustion raises" (fun () ->
        let g = Growable.create ~capacity:2 () in
        ignore (Growable.make_set g);
        ignore (Growable.make_set g);
        Alcotest.check_raises "full" (Failure "Growable.make_set: capacity exhausted")
          (fun () -> ignore (Growable.make_set g)));
    case "operations on uncreated elements rejected" (fun () ->
        let g = Growable.create ~capacity:4 () in
        ignore (Growable.make_set g);
        Alcotest.check_raises "uncreated"
          (Invalid_argument "Growable: element was not created") (fun () ->
            ignore (Growable.same_set g 0 1)));
    case "priorities are distinct in practice" (fun () ->
        let g = Growable.create ~capacity:256 ~seed:7 () in
        let seen = Hashtbl.create 256 in
        for _ = 1 to 256 do
          let e = Growable.make_set g in
          let p = Growable.priority g e in
          check Alcotest.bool "fresh priority" false (Hashtbl.mem seen p);
          Hashtbl.replace seen p ()
        done);
    case "matches oracle on random workload" (fun () ->
        let g = Growable.create ~capacity:100 ~seed:3 () in
        let q = Sequential.Quick_find.create 100 in
        for _ = 1 to 100 do
          ignore (Growable.make_set g)
        done;
        let rng = Repro_util.Rng.create 5 in
        for _ = 1 to 500 do
          let x = Repro_util.Rng.int rng 100 and y = Repro_util.Rng.int rng 100 in
          if Repro_util.Rng.bool rng then begin
            Growable.unite g x y;
            Sequential.Quick_find.unite q x y
          end
          else
            check Alcotest.bool "query"
              (Sequential.Quick_find.same_set q x y)
              (Growable.same_set g x y)
        done;
        check Alcotest.int "count" (Sequential.Quick_find.count_sets q)
          (Growable.count_sets g));
    case "find returns member of own set" (fun () ->
        let g = Growable.create ~capacity:10 ~seed:11 () in
        let a = Growable.make_set g and b = Growable.make_set g in
        Growable.unite g a b;
        let r = Growable.find g a in
        check Alcotest.bool "same" true (Growable.same_set g r b));
    case "stats enabled" (fun () ->
        let g = Growable.create ~collect_stats:true ~capacity:4 () in
        let a = Growable.make_set g and b = Growable.make_set g in
        Growable.unite g a b;
        check Alcotest.int "links" 1 (Growable.stats g).Dsu.Stats.links);
    case "create validates capacity" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Growable.create: capacity must be >= 1") (fun () ->
            ignore (Growable.create ~capacity:0 ())));
    case "parallel make_set allocates distinct slots" (fun () ->
        let g = Growable.create ~capacity:4000 ~seed:13 () in
        let per_domain = 1000 in
        let worker _ = Array.init per_domain (fun _ -> Growable.make_set g) in
        let handles = List.init 4 (fun i -> Domain.spawn (fun () -> worker i)) in
        let results = List.map Domain.join handles in
        let all = List.concat_map Array.to_list results in
        let sorted = List.sort compare all in
        check Alcotest.int "total" 4000 (List.length all);
        check Alcotest.(list int) "distinct slots" (List.init 4000 Fun.id) sorted;
        check Alcotest.int "cardinal" 4000 (Growable.cardinal g));
  ]

(* ------------------------------------------------------------ unbounded *)

module U = Dsu.Growable_unbounded

let unbounded_tests =
  [
    case "grows past any initial size" (fun () ->
        let g = U.create ~chunk_size:8 () in
        let elems = Array.init 100 (fun _ -> U.make_set g) in
        check Alcotest.int "cardinal" 100 (U.cardinal g);
        check Alcotest.bool "many chunks" true (U.chunk_count g >= 12);
        check Alcotest.int "slots are consecutive" 99 elems.(99));
    case "operations across chunk boundaries" (fun () ->
        let g = U.create ~chunk_size:4 () in
        let elems = Array.init 40 (fun _ -> U.make_set g) in
        (* Unite every element with element 0: spans ten chunks. *)
        Array.iter (fun e -> if e <> elems.(0) then U.unite g elems.(0) e) elems;
        check Alcotest.int "one set" 1 (U.count_sets g);
        check Alcotest.bool "ends connected" true (U.same_set g 0 39));
    case "matches oracle on random workload" (fun () ->
        let g = U.create ~chunk_size:16 ~seed:3 () in
        for _ = 1 to 100 do
          ignore (U.make_set g)
        done;
        let q = Sequential.Quick_find.create 100 in
        let rng = Repro_util.Rng.create 5 in
        for _ = 1 to 600 do
          let x = Repro_util.Rng.int rng 100 and y = Repro_util.Rng.int rng 100 in
          if Repro_util.Rng.bool rng then begin
            U.unite g x y;
            Sequential.Quick_find.unite q x y
          end
          else
            check Alcotest.bool "query"
              (Sequential.Quick_find.same_set q x y)
              (U.same_set g x y)
        done;
        check Alcotest.int "count" (Sequential.Quick_find.count_sets q) (U.count_sets g));
    case "interleaved growth and unions" (fun () ->
        (* Alternate make_set and unite so traversals cross chunks that were
           added after earlier elements existed. *)
        let g = U.create ~chunk_size:2 () in
        let first = U.make_set g in
        for _ = 1 to 50 do
          let e = U.make_set g in
          U.unite g first e
        done;
        check Alcotest.int "one set" 1 (U.count_sets g);
        check Alcotest.bool "find works" true (U.same_set g first (U.find g first)));
    case "uncreated elements rejected" (fun () ->
        let g = U.create () in
        ignore (U.make_set g);
        Alcotest.check_raises "uncreated"
          (Invalid_argument "Growable_unbounded: element was not created")
          (fun () -> ignore (U.same_set g 0 1)));
    case "priorities are distinct in practice" (fun () ->
        let g = U.create ~seed:11 () in
        let seen = Hashtbl.create 512 in
        for _ = 1 to 512 do
          let e = U.make_set g in
          let p = U.priority g e in
          check Alcotest.bool "fresh" false (Hashtbl.mem seen p);
          Hashtbl.replace seen p ()
        done);
    case "stats count links" (fun () ->
        let g = U.create ~collect_stats:true () in
        let a = U.make_set g and b = U.make_set g in
        U.unite g a b;
        check Alcotest.int "links" 1 (U.stats g).Dsu.Stats.links);
    case "parallel make_set and unite across domains" (fun () ->
        let g = U.create ~chunk_size:32 ~seed:13 () in
        let worker _ () =
          let mine = Array.init 500 (fun _ -> U.make_set g) in
          Array.iteri (fun i e -> if i > 0 then U.unite g mine.(0) e) mine;
          mine.(0)
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        let reps = List.map Domain.join handles in
        check Alcotest.int "cardinal" 2000 (U.cardinal g);
        check Alcotest.int "four groups" 4 (U.count_sets g);
        (match reps with
        | a :: rest -> List.iter (fun b -> U.unite g a b) rest
        | [] -> ());
        check Alcotest.int "one group" 1 (U.count_sets g));
    case "parallel growth with cross-domain unions" (fun () ->
        (* Domains unite their fresh elements with element 0, forcing
           traversals into chunks created by other domains. *)
        let g = U.create ~chunk_size:8 () in
        let zero = U.make_set g in
        let worker _ () =
          for _ = 1 to 400 do
            let e = U.make_set g in
            U.unite g zero e
          done
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        check Alcotest.int "cardinal" 1601 (U.cardinal g);
        check Alcotest.int "one set" 1 (U.count_sets g));
    case "chunk_size validated" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Growable_unbounded: chunk_size must be >= 1")
          (fun () -> ignore (U.create ~chunk_size:0 ())));
  ]

(* ------------------------------------------------------ chunk directory *)

module Chunked = U.Chunked

let chunked_tests =
  [
    case "ensure grows to cover the index" (fun () ->
        let c = Chunked.create ~chunk_size:4 ~init:(fun ~base j -> base + j) in
        check Alcotest.int "empty" 0 (Chunked.capacity c);
        Chunked.ensure c 7;
        check Alcotest.int "capacity" 8 (Chunked.capacity c);
        check Alcotest.int "chunks" 2 (Chunked.chunk_count c);
        check Alcotest.int "init value" 7 (Chunked.get c 7));
    case "set and cas on created cells" (fun () ->
        let c = Chunked.create ~chunk_size:2 ~init:(fun ~base:_ _ -> 0) in
        Chunked.ensure c 3;
        Chunked.set c 3 42;
        check Alcotest.int "set" 42 (Chunked.get c 3);
        check Alcotest.bool "cas ok" true (Chunked.cas c 3 42 43);
        check Alcotest.bool "cas stale" false (Chunked.cas c 3 42 44);
        check Alcotest.int "final" 43 (Chunked.get c 3));
    case "out-of-capacity access raises instead of spinning" (fun () ->
        let c = Chunked.create ~chunk_size:4 ~init:(fun ~base j -> base + j) in
        Chunked.ensure c 3;
        Alcotest.check_raises "beyond capacity"
          (Invalid_argument
             "Growable_unbounded: cell 100 out of capacity 4 with no growth \
              in progress")
          (fun () -> ignore (Chunked.get c 100)));
    case "error names the live capacity, not the stale snapshot" (fun () ->
        let c = Chunked.create ~chunk_size:4 ~init:(fun ~base j -> base + j) in
        Chunked.ensure c 11;
        Alcotest.check_raises "beyond capacity"
          (Invalid_argument
             "Growable_unbounded: cell 50 out of capacity 12 with no growth \
              in progress")
          (fun () -> ignore (Chunked.set c 50 1)));
  ]

(* ------------------------------------------------- multi-domain vs oracle *)

(* The chaos-adjacent stress test: 4 domains interleave [make_set], [unite]
   and [find]/[same_set] on one unbounded structure, publishing created
   slots through a shared board so cross-domain unions only ever touch
   fully created elements.  Every completed unite is recorded; at
   quiescence the final partition must coincide exactly with a sequential
   oracle replaying those unites. *)

let stress_tests =
  let refines a b =
    (* every [a]-class sits inside one [b]-class *)
    let tbl = Hashtbl.create 97 in
    Array.for_all2
      (fun ra rb ->
        match Hashtbl.find_opt tbl ra with
        | None ->
          Hashtbl.add tbl ra rb;
          true
        | Some rb' -> rb = rb')
      a b
  in
  [
    case "4-domain make_set/unite/find agrees with sequential oracle" (fun () ->
        let domains = 4 and per_domain = 600 in
        let g = U.create ~chunk_size:16 ~seed:29 () in
        let board = Array.init (domains * per_domain) (fun _ -> Atomic.make (-1)) in
        let reserved = Atomic.make 0 in
        let unites = Array.make domains [] in
        let worker k () =
          let rng = Repro_util.Rng.create (100 + k) in
          let pick_published last =
            let c = Atomic.get reserved in
            if c = 0 then last
            else
              let v = Atomic.get board.(Repro_util.Rng.int rng c) in
              if v < 0 then last else Some v
          in
          let last = ref None in
          for _ = 1 to per_domain do
            let e = U.make_set g in
            Atomic.set board.(Atomic.fetch_and_add reserved 1) e;
            last := Some e;
            (* a couple of random ops against published elements *)
            for _ = 1 to 2 do
              match (pick_published !last, pick_published !last) with
              | Some x, Some y ->
                if Repro_util.Rng.bool rng then begin
                  U.unite g x y;
                  unites.(k) <- (x, y) :: unites.(k)
                end
                else begin
                  ignore (U.same_set g x y);
                  ignore (U.find g x)
                end
              | _ -> ()
            done
          done
        in
        let handles = List.init domains (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        let n = U.cardinal g in
        check Alcotest.int "all created" (domains * per_domain) n;
        let oracle = Sequential.Seq_dsu.create n in
        Array.iter
          (List.iter (fun (x, y) -> Sequential.Seq_dsu.unite oracle x y))
          unites;
        let g_roots = Array.init n (U.find g) in
        let o_roots = Array.init n (Sequential.Seq_dsu.find oracle) in
        check Alcotest.bool "no extra connectivity" true (refines g_roots o_roots);
        check Alcotest.bool "no lost unions" true (refines o_roots g_roots);
        check Alcotest.int "set counts agree"
          (Sequential.Seq_dsu.count_sets oracle)
          (U.count_sets g));
  ]

let () =
  Alcotest.run "growable"
    [
      ("growable", tests);
      ("unbounded", unbounded_tests);
      ("chunked", chunked_tests);
      ("stress", stress_tests);
    ]
