(* Unit tests for the telemetry subsystem (lib/obs): registry merging
   across real domains, histogram buckets and quantiles, trace-ring
   wraparound and drop counting, exporter output well-formedness, and the
   Dsu_stats JSON bridge. *)

module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Export = Repro_obs.Export
module Json = Repro_obs.Json

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* Every test arms telemetry for its own duration; the flags are global,
   so restore them no matter how the test exits. *)
let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let with_trace f =
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

(* ------------------------------------------------------------- metrics *)

let counter_value_of snap name =
  match
    List.find_opt (fun (s : Metrics.sample) -> s.name = name) snap
  with
  | Some { value = Metrics.Counter_v v; _ } -> Some v
  | _ -> None

let metrics_tests =
  [
    case "counter merge across 4 domains equals sequential total" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r "test_merge_total" in
            let per_domain = 25_000 in
            let workers =
              List.init 4 (fun _ ->
                  Domain.spawn (fun () ->
                      for _ = 1 to per_domain do
                        Metrics.incr c
                      done))
            in
            List.iter Domain.join workers;
            check Alcotest.int "merged total" (4 * per_domain)
              (Metrics.counter_value c)));
    case "histogram merge across 4 domains" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_merge_hist" in
            let per_domain = 10_000 in
            let workers =
              List.init 4 (fun k ->
                  Domain.spawn (fun () ->
                      for i = 1 to per_domain do
                        Metrics.observe h ((i mod 7) + k)
                      done))
            in
            List.iter Domain.join workers;
            let snap = Metrics.hist_value h in
            check Alcotest.int "count" (4 * per_domain) snap.Metrics.count;
            let bucket_total =
              List.fold_left (fun acc (_, c) -> acc + c) 0 snap.Metrics.buckets
            in
            check Alcotest.int "buckets cover every sample" (4 * per_domain)
              bucket_total));
    case "counter registration is idempotent, kind mismatch rejected"
      (fun () ->
        let r = Metrics.create () in
        let a = Metrics.counter ~registry:r "test_idem" in
        let b = Metrics.counter ~registry:r "test_idem" in
        with_metrics (fun () ->
            Metrics.incr a;
            Metrics.incr b);
        check Alcotest.int "same instrument" 2 (Metrics.counter_value a);
        check Alcotest.bool "kind mismatch raises" true
          (try
             ignore (Metrics.gauge ~registry:r "test_idem");
             false
           with Invalid_argument _ -> true));
    case "updates are no-ops while disabled" (fun () ->
        let r = Metrics.create () in
        let c = Metrics.counter ~registry:r "test_disabled" in
        Metrics.incr c;
        Metrics.add c 10;
        check Alcotest.int "still zero" 0 (Metrics.counter_value c));
    case "histogram bucket boundaries are powers of two" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_buckets" in
            List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
            let snap = Metrics.hist_value h in
            check
              (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
              "buckets"
              [ (0, 1); (1, 1); (3, 2); (7, 2); (15, 1) ]
              snap.Metrics.buckets;
            check Alcotest.int "sum" 25 snap.Metrics.sum;
            check Alcotest.int "max" 8 snap.Metrics.max));
    case "quantiles: empty histogram" (fun () ->
        let r = Metrics.create () in
        let h = Metrics.histogram ~registry:r "test_q_empty" in
        let snap = Metrics.hist_value h in
        check Alcotest.int "count" 0 snap.Metrics.count;
        check Alcotest.int "p50" 0 (Metrics.quantile snap 0.5);
        check Alcotest.int "p99" 0 (Metrics.quantile snap 0.99));
    case "quantiles: single sample is exact" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_q_single" in
            Metrics.observe h 37;
            let snap = Metrics.hist_value h in
            check Alcotest.int "p50" 37 (Metrics.quantile snap 0.5);
            check Alcotest.int "p99" 37 (Metrics.quantile snap 0.99);
            check Alcotest.int "max" 37 snap.Metrics.max));
    case "quantiles are monotone and bounded by max" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_q_mono" in
            for i = 1 to 1000 do
              Metrics.observe h i
            done;
            let snap = Metrics.hist_value h in
            let p50 = Metrics.quantile snap 0.5 in
            let p90 = Metrics.quantile snap 0.9 in
            let p99 = Metrics.quantile snap 0.99 in
            check Alcotest.bool "p50 <= p90" true (p50 <= p90);
            check Alcotest.bool "p90 <= p99" true (p90 <= p99);
            check Alcotest.bool "p99 <= max" true (p99 <= snap.Metrics.max);
            (* The estimate overshoots by at most the bucket width. *)
            check Alcotest.bool "p50 within a bucket of truth" true
              (p50 >= 500 && p50 <= 1023)));
    case "negative samples clamp to zero" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_q_neg" in
            Metrics.observe h (-5);
            let snap = Metrics.hist_value h in
            check Alcotest.int "count" 1 snap.Metrics.count;
            check Alcotest.int "sum" 0 snap.Metrics.sum));
    case "reset zeroes every instrument" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r "test_reset_c" in
            let h = Metrics.histogram ~registry:r "test_reset_h" in
            Metrics.incr c;
            Metrics.observe h 9;
            Metrics.reset ~registry:r ();
            check Alcotest.int "counter" 0 (Metrics.counter_value c);
            check Alcotest.int "hist count" 0 (Metrics.hist_value h).Metrics.count));
  ]

(* --------------------------------------------------------------- trace *)

let trace_tests =
  [
    case "ring wraparound keeps the newest events and counts drops"
      (fun () ->
        with_trace (fun () ->
            Trace.clear ();
            Trace.set_capacity 8;
            (* A fresh domain gets a fresh ring created with the capacity
               in force now. *)
            let d =
              Domain.spawn (fun () ->
                  for i = 1 to 20 do
                    Trace.emit (Trace.Find_start { node = i })
                  done)
            in
            Domain.join d;
            let chunk =
              match
                List.find_opt
                  (fun (c : Trace.chunk) -> c.records <> [])
                  (Trace.dump ())
              with
              | Some c -> c
              | None -> Alcotest.fail "no ring recorded events"
            in
            check Alcotest.int "dropped" 12 chunk.Trace.dropped;
            check Alcotest.int "kept" 8 (List.length chunk.Trace.records);
            let nodes =
              List.map
                (fun (r : Trace.record) ->
                  match r.Trace.event with
                  | Trace.Find_start { node } -> node
                  | _ -> -1)
                chunk.Trace.records
            in
            check
              (Alcotest.list Alcotest.int)
              "oldest-first, newest retained"
              [ 13; 14; 15; 16; 17; 18; 19; 20 ]
              nodes;
            let ts = List.map (fun (r : Trace.record) -> r.Trace.ts_ns) chunk.Trace.records in
            check Alcotest.bool "timestamps non-decreasing" true
              (List.sort compare ts = ts);
            Trace.set_capacity 8192;
            Trace.clear ()));
    case "emit is a no-op while disabled" (fun () ->
        Trace.clear ();
        Trace.emit Trace.Outer_retry;
        let total =
          List.fold_left
            (fun acc (c : Trace.chunk) -> acc + List.length c.Trace.records)
            0 (Trace.dump ())
        in
        check Alcotest.int "no events" 0 total);
  ]

(* ----------------------------------------------------------- exporters *)

let exporter_tests =
  [
    case "json round-trips through the parser" (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.List [ Json.Float 1.5; Json.Null; Json.Bool true ]);
              ("c", Json.String "quote \" backslash \\ newline \n end");
              ("d", Json.Obj []);
            ]
        in
        check Alcotest.bool "round trip" true
          (Json.parse_exn (Json.to_string v) = v));
    case "jsonl: every line parses, names and values survive" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r "test_export_total" in
            let h = Metrics.histogram ~registry:r "test_export_hist" in
            Metrics.add c 7;
            List.iter (Metrics.observe h) [ 1; 2; 3; 100 ];
            let lines =
              Export.metrics_jsonl (Metrics.snapshot_of r)
              |> String.trim |> String.split_on_char '\n'
            in
            check Alcotest.int "two metrics" 2 (List.length lines);
            let parsed = List.map Json.parse_exn lines in
            let find name =
              List.find
                (fun j -> Json.member "name" j = Some (Json.String name))
                parsed
            in
            let counter = find "test_export_total" in
            check Alcotest.bool "counter value" true
              (Json.member "value" counter = Some (Json.Int 7));
            let hist = find "test_export_hist" in
            check Alcotest.bool "hist count" true
              (Json.member "count" hist = Some (Json.Int 4));
            check Alcotest.bool "hist has p50" true
              (Json.member "p50" hist <> None);
            check Alcotest.bool "hist has p99" true
              (Json.member "p99" hist <> None)));
    case "prometheus exposition shape" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r ~help:"help text" "test_prom_total" in
            let h = Metrics.histogram ~registry:r "test_prom_hist" in
            Metrics.add c 3;
            Metrics.observe h 5;
            let text = Export.metrics_prometheus (Metrics.snapshot_of r) in
            let contains needle =
              let nl = String.length needle and tl = String.length text in
              let rec go i =
                i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
              in
              go 0
            in
            check Alcotest.bool "TYPE counter" true
              (contains "# TYPE test_prom_total counter");
            check Alcotest.bool "HELP line" true
              (contains "# HELP test_prom_total help text");
            check Alcotest.bool "counter sample" true
              (contains "test_prom_total 3");
            check Alcotest.bool "+Inf bucket" true
              (contains "test_prom_hist_bucket{le=\"+Inf\"} 1");
            check Alcotest.bool "sum" true (contains "test_prom_hist_sum 5");
            check Alcotest.bool "count" true
              (contains "test_prom_hist_count 1")));
    case "chrome trace validates against the trace_event schema" (fun () ->
        with_trace (fun () ->
            Trace.clear ();
            Trace.emit (Trace.Find_start { node = 3 });
            Trace.emit (Trace.Compaction_cas { ok = false });
            Trace.emit (Trace.Find_end { node = 3; root = 7; iters = 2 });
            Trace.emit (Trace.Link_cas { ok = true });
            Trace.emit Trace.Outer_retry;
            Trace.emit (Trace.Sched_decision { pid = 1 });
            Trace.emit (Trace.Phase_start { name = "phase" });
            Trace.emit (Trace.Phase_end { name = "phase" });
            Trace.emit (Trace.Instant { name = "tick" });
            let doc =
              Json.parse_exn (Export.chrome_trace_string (Trace.dump ()))
            in
            (match doc with
            | Json.List events ->
              check Alcotest.int "all events exported" 9 (List.length events);
              List.iter
                (fun e ->
                  List.iter
                    (fun key ->
                      check Alcotest.bool (key ^ " present") true
                        (Json.member key e <> None))
                    [ "name"; "ph"; "ts"; "pid"; "tid"; "args" ])
                events
            | _ -> Alcotest.fail "chrome trace is not a JSON array");
            Trace.clear ()));
  ]

(* ------------------------------------------- integration with the DSU *)

let integration_tests =
  [
    case "native ops populate metrics that match Dsu_stats" (fun () ->
        with_metrics (fun () ->
            Metrics.reset ();
            let n = 512 in
            let d = Dsu.Native.create ~collect_stats:true ~seed:11 n in
            for i = 0 to n - 2 do
              Dsu.Native.unite d i (i + 1)
            done;
            for i = 0 to n - 1 do
              ignore (Dsu.Native.same_set d i 0 : bool)
            done;
            let stats = Dsu.Native.stats d in
            let snap = Metrics.snapshot () in
            let counter name =
              match counter_value_of snap name with
              | Some v -> v
              | None -> Alcotest.fail (name ^ " not registered")
            in
            check Alcotest.int "link cas ok = links" stats.Dsu.Stats.links
              (counter "dsu_link_cas_ok_total");
            check Alcotest.int "link cas fail"
              stats.Dsu.Stats.link_cas_failures
              (counter "dsu_link_cas_fail_total");
            check Alcotest.int "compaction cas"
              stats.Dsu.Stats.compaction_cas
              (counter "dsu_compaction_cas_ok_total"
              + counter "dsu_compaction_cas_fail_total");
            check Alcotest.int "finds" stats.Dsu.Stats.find_calls
              (counter "dsu_find_total");
            check Alcotest.int "ops" (2 * n - 1) (counter "dsu_ops_total");
            Metrics.reset ()));
    case "run_sim attaches a registry snapshot" (fun () ->
        with_metrics (fun () ->
            Metrics.reset ();
            let ops =
              [|
                [ Workload.Op.Unite (0, 1); Workload.Op.Same_set (0, 1) ];
                [ Workload.Op.Unite (2, 3); Workload.Op.Find 0 ];
              |]
            in
            let r = Harness.Measure.run_sim ~n:4 ~seed:5 ~ops () in
            let steps =
              match counter_value_of r.Harness.Measure.obs "apram_steps_total" with
              | Some v -> v
              | None -> Alcotest.fail "apram_steps_total missing"
            in
            check Alcotest.int "snapshot steps = simulator steps"
              r.Harness.Measure.total_steps steps;
            Metrics.reset ()));
    case "Dsu_stats.to_json parses and matches the snapshot" (fun () ->
        let d = Dsu.Native.create ~collect_stats:true ~seed:3 64 in
        for i = 0 to 62 do
          Dsu.Native.unite d i (i + 1)
        done;
        let s = Dsu.Native.stats d in
        let j = Json.parse_exn (Dsu.Stats.to_json s) in
        check Alcotest.bool "links field" true
          (Json.member "links" j = Some (Json.Int s.Dsu.Stats.links));
        check Alcotest.bool "find_iters field" true
          (Json.member "find_iters" j = Some (Json.Int s.Dsu.Stats.find_iters));
        check Alcotest.bool "total_work field" true
          (Json.member "total_work" j
          = Some (Json.Int (Dsu.Stats.total_work s))));
  ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("trace", trace_tests);
      ("exporters", exporter_tests);
      ("integration", integration_tests);
    ]
