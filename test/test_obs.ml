(* Unit tests for the telemetry subsystem (lib/obs): registry merging
   across real domains, histogram buckets and quantiles, trace-ring
   wraparound and drop counting, exporter output well-formedness, and the
   Dsu_stats JSON bridge. *)

module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Export = Repro_obs.Export
module Json = Repro_obs.Json
module Hdr = Repro_obs.Hdr
module Reservoir = Repro_obs.Reservoir

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let contains_sub text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

(* Every test arms telemetry for its own duration; the flags are global,
   so restore them no matter how the test exits. *)
let with_metrics f =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled false) f

let with_trace f =
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () -> Trace.set_enabled false) f

(* ------------------------------------------------------------- metrics *)

let counter_value_of snap name =
  match
    List.find_opt (fun (s : Metrics.sample) -> s.name = name) snap
  with
  | Some { value = Metrics.Counter_v v; _ } -> Some v
  | _ -> None

let metrics_tests =
  [
    case "counter merge across 4 domains equals sequential total" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r "test_merge_total" in
            let per_domain = 25_000 in
            let workers =
              List.init 4 (fun _ ->
                  Domain.spawn (fun () ->
                      for _ = 1 to per_domain do
                        Metrics.incr c
                      done))
            in
            List.iter Domain.join workers;
            check Alcotest.int "merged total" (4 * per_domain)
              (Metrics.counter_value c)));
    case "histogram merge across 4 domains" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_merge_hist" in
            let per_domain = 10_000 in
            let workers =
              List.init 4 (fun k ->
                  Domain.spawn (fun () ->
                      for i = 1 to per_domain do
                        Metrics.observe h ((i mod 7) + k)
                      done))
            in
            List.iter Domain.join workers;
            let snap = Metrics.hist_value h in
            check Alcotest.int "count" (4 * per_domain) snap.Metrics.count;
            let bucket_total =
              List.fold_left (fun acc (_, c) -> acc + c) 0 snap.Metrics.buckets
            in
            check Alcotest.int "buckets cover every sample" (4 * per_domain)
              bucket_total));
    case "counter registration is idempotent, kind mismatch rejected"
      (fun () ->
        let r = Metrics.create () in
        let a = Metrics.counter ~registry:r "test_idem" in
        let b = Metrics.counter ~registry:r "test_idem" in
        with_metrics (fun () ->
            Metrics.incr a;
            Metrics.incr b);
        check Alcotest.int "same instrument" 2 (Metrics.counter_value a);
        check Alcotest.bool "kind mismatch raises" true
          (try
             ignore (Metrics.gauge ~registry:r "test_idem");
             false
           with Invalid_argument _ -> true));
    case "updates are no-ops while disabled" (fun () ->
        let r = Metrics.create () in
        let c = Metrics.counter ~registry:r "test_disabled" in
        Metrics.incr c;
        Metrics.add c 10;
        check Alcotest.int "still zero" 0 (Metrics.counter_value c));
    case "histogram bucket boundaries are powers of two" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_buckets" in
            List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
            let snap = Metrics.hist_value h in
            check
              (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
              "buckets"
              [ (0, 1); (1, 1); (3, 2); (7, 2); (15, 1) ]
              snap.Metrics.buckets;
            check Alcotest.int "sum" 25 snap.Metrics.sum;
            check Alcotest.int "max" 8 snap.Metrics.max));
    case "quantiles: empty histogram" (fun () ->
        let r = Metrics.create () in
        let h = Metrics.histogram ~registry:r "test_q_empty" in
        let snap = Metrics.hist_value h in
        check Alcotest.int "count" 0 snap.Metrics.count;
        check Alcotest.int "p50" 0 (Metrics.quantile snap 0.5);
        check Alcotest.int "p99" 0 (Metrics.quantile snap 0.99));
    case "quantiles: single sample is exact" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_q_single" in
            Metrics.observe h 37;
            let snap = Metrics.hist_value h in
            check Alcotest.int "p50" 37 (Metrics.quantile snap 0.5);
            check Alcotest.int "p99" 37 (Metrics.quantile snap 0.99);
            check Alcotest.int "max" 37 snap.Metrics.max));
    case "quantiles are monotone and bounded by max" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_q_mono" in
            for i = 1 to 1000 do
              Metrics.observe h i
            done;
            let snap = Metrics.hist_value h in
            let p50 = Metrics.quantile snap 0.5 in
            let p90 = Metrics.quantile snap 0.9 in
            let p99 = Metrics.quantile snap 0.99 in
            check Alcotest.bool "p50 <= p90" true (p50 <= p90);
            check Alcotest.bool "p90 <= p99" true (p90 <= p99);
            check Alcotest.bool "p99 <= max" true (p99 <= snap.Metrics.max);
            (* The estimate overshoots by at most the bucket width. *)
            check Alcotest.bool "p50 within a bucket of truth" true
              (p50 >= 500 && p50 <= 1023)));
    case "negative samples clamp to zero" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.histogram ~registry:r "test_q_neg" in
            Metrics.observe h (-5);
            let snap = Metrics.hist_value h in
            check Alcotest.int "count" 1 snap.Metrics.count;
            check Alcotest.int "sum" 0 snap.Metrics.sum));
    case "reset zeroes every instrument" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r "test_reset_c" in
            let h = Metrics.histogram ~registry:r "test_reset_h" in
            Metrics.incr c;
            Metrics.observe h 9;
            Metrics.reset ~registry:r ();
            check Alcotest.int "counter" 0 (Metrics.counter_value c);
            check Alcotest.int "hist count" 0 (Metrics.hist_value h).Metrics.count));
  ]

(* ----------------------------------------------------------------- hdr *)

(* Deterministic Lehmer generator for test sample streams. *)
let lcg seed =
  let state = ref (if seed <= 0 then 1 else seed) in
  fun () ->
    state := !state * 48271 mod 0x7FFFFFFF;
    !state

(* Wide-dynamic-range values: 1 ns .. ~2^28 ns, log-uniform-ish. *)
let wide_sample next () = 1 + (next () mod (1 lsl (8 + (next () mod 20))))

let hdr_tests =
  [
    case "bucket bounds respect the advertised relative error" (fun () ->
        let vals =
          [ 0; 1; 2; 100; 255; 256; 257; 511; 512; 1000; 65_535; 65_536;
            999_999_937; Hdr.max_trackable ]
        in
        List.iter
          (fun v ->
            let upper = Hdr.bucket_upper (Hdr.bucket_of v) in
            check Alcotest.bool
              (Printf.sprintf "upper %d covers %d" upper v)
              true (upper >= v);
            if v > 0 then
              check Alcotest.bool
                (Printf.sprintf "relative error at %d" v)
                true
                (float_of_int (upper - v) /. float_of_int v <= Hdr.rel_error);
            if v < 256 then
              check Alcotest.int
                (Printf.sprintf "exact below 256 at %d" v)
                v upper)
          vals;
        (* bucket_of and bucket_upper are inverse on bucket bounds *)
        List.iter
          (fun b ->
            check Alcotest.int
              (Printf.sprintf "bucket %d round-trips" b)
              b
              (Hdr.bucket_of (Hdr.bucket_upper b)))
          [ 0; 1; 255; 256; 1000; 2000; Hdr.n_buckets - 1 ]);
    case "quantiles within 1% of exact over 10^5 samples" (fun () ->
        let n = 100_000 in
        let next = lcg 20260809 in
        let sample = wide_sample next in
        let h = Hdr.create () in
        Hdr.materialize h;
        let samples = Array.init n (fun _ -> sample ()) in
        Array.iter (Hdr.observe h) samples;
        let s = Hdr.snap h in
        let sorted = Array.copy samples in
        Array.sort compare sorted;
        check Alcotest.int "count" n s.Hdr.count;
        check Alcotest.int "sum" (Array.fold_left ( + ) 0 samples) s.Hdr.sum;
        check Alcotest.int "min" sorted.(0) s.Hdr.min;
        check Alcotest.int "max" sorted.(n - 1) s.Hdr.max;
        List.iter
          (fun q ->
            let exact = Reservoir.exact_quantile sorted q in
            let est = Hdr.quantile s q in
            check Alcotest.bool
              (Printf.sprintf "q%.3f estimate >= exact" q)
              true (est >= exact);
            check Alcotest.bool
              (Printf.sprintf "q%.3f within 1%% (est %d exact %d)" q est exact)
              true
              (float_of_int est <= float_of_int exact *. 1.01))
          [ 0.5; 0.9; 0.99; 0.999 ];
        check Alcotest.int "q1.0 is the exact max" sorted.(n - 1)
          (Hdr.quantile s 1.0));
    case "single sample is exact at every quantile" (fun () ->
        let h = Hdr.create ~sharded:false () in
        Hdr.materialize h;
        Hdr.observe h 123_456;
        let s = Hdr.snap h in
        check Alcotest.int "count" 1 s.Hdr.count;
        List.iter
          (fun q ->
            check Alcotest.int
              (Printf.sprintf "q%.3f" q)
              123_456 (Hdr.quantile s q))
          [ 0.0; 0.5; 0.999; 1.0 ];
        check (Alcotest.float 1e-9) "mean" 123_456.0 (Hdr.mean s));
    case "empty snapshot" (fun () ->
        let h = Hdr.create ~sharded:false () in
        Hdr.materialize h;
        let s = Hdr.snap h in
        check Alcotest.int "count" 0 s.Hdr.count;
        check Alcotest.int "quantile" 0 (Hdr.quantile s 0.99);
        check (Alcotest.float 1e-9) "mean" 0.0 (Hdr.mean s);
        check Alcotest.bool "empty constant" true (s = Hdr.empty));
    case "observe drops until materialized; clamps out-of-range" (fun () ->
        let h = Hdr.create ~sharded:false () in
        Hdr.observe h 5;
        check Alcotest.bool "not materialized" false (Hdr.materialized h);
        check Alcotest.int "dropped" 0 (Hdr.snap h).Hdr.count;
        Hdr.materialize h;
        Hdr.observe h (-7);
        Hdr.observe h max_int;
        let s = Hdr.snap h in
        check Alcotest.int "count" 2 s.Hdr.count;
        check Alcotest.int "negative clamps to 0" 0 s.Hdr.min;
        check Alcotest.int "oversized clamps to max_trackable"
          Hdr.max_trackable s.Hdr.max;
        Hdr.reset h;
        check Alcotest.int "reset zeroes" 0 (Hdr.snap h).Hdr.count);
    case "merge is order-independent and equals one histogram" (fun () ->
        (* Four single-writer recorders fed from domains, one reference
           recorder fed the same streams sequentially. *)
        let stream k =
          let next = lcg (7 * (k + 1)) in
          Array.init 25_000 (fun _ -> wide_sample next ())
        in
        let streams = List.init 4 stream in
        let parts =
          List.map
            (fun samples ->
              Domain.spawn (fun () ->
                  let h = Hdr.create ~sharded:false () in
                  Hdr.materialize h;
                  Array.iter (Hdr.observe h) samples;
                  Hdr.snap h))
            streams
          |> List.map Domain.join
        in
        let reference = Hdr.create ~sharded:false () in
        Hdr.materialize reference;
        List.iter (Array.iter (Hdr.observe reference)) streams;
        let fwd = List.fold_left Hdr.merge Hdr.empty parts in
        let rev = List.fold_left Hdr.merge Hdr.empty (List.rev parts) in
        check Alcotest.bool "forward merge = reverse merge" true (fwd = rev);
        check Alcotest.bool "merge = single histogram" true
          (fwd = Hdr.snap reference);
        check Alcotest.int "count" 100_000 fwd.Hdr.count);
    case "sharded recorder merges 4 concurrent domains" (fun () ->
        let h = Hdr.create () in
        Hdr.materialize h;
        let per_domain = 10_000 in
        let workers =
          List.init 4 (fun k ->
              Domain.spawn (fun () ->
                  for i = 1 to per_domain do
                    Hdr.observe h ((i mod 1000) + k)
                  done))
        in
        List.iter Domain.join workers;
        let s = Hdr.snap h in
        check Alcotest.int "count" (4 * per_domain) s.Hdr.count;
        let bucket_total =
          List.fold_left (fun acc (_, c) -> acc + c) 0 s.Hdr.buckets
        in
        check Alcotest.int "buckets cover every sample" (4 * per_domain)
          bucket_total);
    case "registry-owned instrument is gated and resettable" (fun () ->
        let r = Metrics.create () in
        let h = Metrics.hdr_histogram ~registry:r "test_hdr_gate_ns" in
        Metrics.observe_hdr h 5;
        with_metrics (fun () ->
            Metrics.observe_hdr h 7;
            let sample =
              List.find
                (fun (s : Metrics.sample) -> s.name = "test_hdr_gate_ns")
                (Metrics.snapshot_of r)
            in
            (match sample.value with
            | Metrics.Hdr_v s ->
              check Alcotest.int "only armed sample recorded" 1 s.Hdr.count;
              check Alcotest.int "value" 7 s.Hdr.max
            | _ -> Alcotest.fail "expected Hdr_v sample");
            Metrics.reset ~registry:r ();
            match
              (List.find
                 (fun (s : Metrics.sample) -> s.name = "test_hdr_gate_ns")
                 (Metrics.snapshot_of r))
                .value
            with
            | Metrics.Hdr_v s -> check Alcotest.int "reset" 0 s.Hdr.count
            | _ -> Alcotest.fail "expected Hdr_v sample"));
  ]

(* ----------------------------------------------------------- reservoir *)

let reservoir_tests =
  [
    case "keeps everything below capacity, exact quantile ranks" (fun () ->
        let r = Reservoir.create ~capacity:200 () in
        for i = 0 to 99 do
          Reservoir.add r i
        done;
        check Alcotest.int "seen" 100 (Reservoir.seen r);
        check Alcotest.int "length" 100 (Reservoir.length r);
        let sorted = Reservoir.sorted r in
        check Alcotest.(array int) "sorted retention"
          (Array.init 100 Fun.id) sorted;
        (* ceil-rank convention, matching Hdr.quantile *)
        check Alcotest.int "q0.01 = 1st smallest" 0
          (Reservoir.exact_quantile sorted 0.01);
        check Alcotest.int "q0.5 = 50th smallest" 49
          (Reservoir.exact_quantile sorted 0.5);
        check Alcotest.int "q1.0 = max" 99
          (Reservoir.exact_quantile sorted 1.0);
        check Alcotest.int "empty array" 0
          (Reservoir.exact_quantile [||] 0.5));
    case "caps at capacity with a uniform subset" (fun () ->
        let r = Reservoir.create ~capacity:64 () in
        for i = 0 to 9_999 do
          Reservoir.add r i
        done;
        check Alcotest.int "seen" 10_000 (Reservoir.seen r);
        check Alcotest.int "length" 64 (Reservoir.length r);
        Array.iter
          (fun v ->
            check Alcotest.bool "sample from the stream" true
              (v >= 0 && v < 10_000))
          (Reservoir.samples r));
    case "deterministic for a seed" (fun () ->
        let run () =
          let r = Reservoir.create ~seed:99 ~capacity:32 () in
          for i = 0 to 4_999 do
            Reservoir.add r (i * 3)
          done;
          Reservoir.sorted r
        in
        check Alcotest.(array int) "same seed, same subset" (run ()) (run ()));
    case "capacity must be positive" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Reservoir.create ~capacity:0 ());
             false
           with Invalid_argument _ -> true));
  ]

(* --------------------------------------------------------------- trace *)

let trace_tests =
  [
    case "ring wraparound keeps the newest events and counts drops"
      (fun () ->
        with_trace (fun () ->
            Trace.clear ();
            Trace.set_capacity 8;
            (* A fresh domain gets a fresh ring created with the capacity
               in force now. *)
            let d =
              Domain.spawn (fun () ->
                  for i = 1 to 20 do
                    Trace.emit (Trace.Find_start { node = i })
                  done)
            in
            Domain.join d;
            let chunk =
              match
                List.find_opt
                  (fun (c : Trace.chunk) -> c.records <> [])
                  (Trace.dump ())
              with
              | Some c -> c
              | None -> Alcotest.fail "no ring recorded events"
            in
            check Alcotest.int "dropped" 12 chunk.Trace.dropped;
            check Alcotest.int "kept" 8 (List.length chunk.Trace.records);
            let nodes =
              List.map
                (fun (r : Trace.record) ->
                  match r.Trace.event with
                  | Trace.Find_start { node } -> node
                  | _ -> -1)
                chunk.Trace.records
            in
            check
              (Alcotest.list Alcotest.int)
              "oldest-first, newest retained"
              [ 13; 14; 15; 16; 17; 18; 19; 20 ]
              nodes;
            let ts = List.map (fun (r : Trace.record) -> r.Trace.ts_ns) chunk.Trace.records in
            check Alcotest.bool "timestamps non-decreasing" true
              (List.sort compare ts = ts);
            Trace.set_capacity 8192;
            Trace.clear ()));
    case "emit is a no-op while disabled" (fun () ->
        Trace.clear ();
        Trace.emit Trace.Outer_retry;
        let total =
          List.fold_left
            (fun acc (c : Trace.chunk) -> acc + List.length c.Trace.records)
            0 (Trace.dump ())
        in
        check Alcotest.int "no events" 0 total);
  ]

(* ----------------------------------------------------------- exporters *)

let exporter_tests =
  [
    case "json round-trips through the parser" (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.Int 42);
              ("b", Json.List [ Json.Float 1.5; Json.Null; Json.Bool true ]);
              ("c", Json.String "quote \" backslash \\ newline \n end");
              ("d", Json.Obj []);
            ]
        in
        check Alcotest.bool "round trip" true
          (Json.parse_exn (Json.to_string v) = v));
    case "jsonl: every line parses, names and values survive" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r "test_export_total" in
            let h = Metrics.histogram ~registry:r "test_export_hist" in
            Metrics.add c 7;
            List.iter (Metrics.observe h) [ 1; 2; 3; 100 ];
            let lines =
              Export.metrics_jsonl (Metrics.snapshot_of r)
              |> String.trim |> String.split_on_char '\n'
            in
            check Alcotest.int "two metrics" 2 (List.length lines);
            let parsed = List.map Json.parse_exn lines in
            let find name =
              List.find
                (fun j -> Json.member "name" j = Some (Json.String name))
                parsed
            in
            let counter = find "test_export_total" in
            check Alcotest.bool "counter value" true
              (Json.member "value" counter = Some (Json.Int 7));
            let hist = find "test_export_hist" in
            check Alcotest.bool "hist count" true
              (Json.member "count" hist = Some (Json.Int 4));
            check Alcotest.bool "hist has p50" true
              (Json.member "p50" hist <> None);
            check Alcotest.bool "hist has p99" true
              (Json.member "p99" hist <> None)));
    case "prometheus exposition shape" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c = Metrics.counter ~registry:r ~help:"help text" "test_prom_total" in
            let h = Metrics.histogram ~registry:r "test_prom_hist" in
            Metrics.add c 3;
            Metrics.observe h 5;
            let text = Export.metrics_prometheus (Metrics.snapshot_of r) in
            let contains needle =
              let nl = String.length needle and tl = String.length text in
              let rec go i =
                i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
              in
              go 0
            in
            check Alcotest.bool "TYPE counter" true
              (contains "# TYPE test_prom_total counter");
            check Alcotest.bool "HELP line" true
              (contains "# HELP test_prom_total help text");
            check Alcotest.bool "counter sample" true
              (contains "test_prom_total 3");
            check Alcotest.bool "+Inf bucket" true
              (contains "test_prom_hist_bucket{le=\"+Inf\"} 1");
            check Alcotest.bool "sum" true (contains "test_prom_hist_sum 5");
            check Alcotest.bool "count" true
              (contains "test_prom_hist_count 1")));
    case "chrome trace validates against the trace_event schema" (fun () ->
        with_trace (fun () ->
            Trace.clear ();
            Trace.emit (Trace.Find_start { node = 3 });
            Trace.emit (Trace.Compaction_cas { ok = false });
            Trace.emit (Trace.Find_end { node = 3; root = 7; iters = 2 });
            Trace.emit (Trace.Link_cas { ok = true });
            Trace.emit Trace.Outer_retry;
            Trace.emit (Trace.Sched_decision { pid = 1 });
            Trace.emit (Trace.Phase_start { name = "phase" });
            Trace.emit (Trace.Phase_end { name = "phase" });
            Trace.emit (Trace.Instant { name = "tick" });
            let doc =
              Json.parse_exn (Export.chrome_trace_string (Trace.dump ()))
            in
            (match doc with
            | Json.List events ->
              check Alcotest.int "all events exported" 9 (List.length events);
              List.iter
                (fun e ->
                  List.iter
                    (fun key ->
                      check Alcotest.bool (key ^ " present") true
                        (Json.member key e <> None))
                    [ "name"; "ph"; "ts"; "pid"; "tid"; "args" ])
                events
            | _ -> Alcotest.fail "chrome trace is not a JSON array");
            Trace.clear ()));
    case "empty registry exports cleanly" (fun () ->
        let snap = Metrics.snapshot_of (Metrics.create ()) in
        check Alcotest.string "jsonl" "" (Export.metrics_jsonl snap);
        check Alcotest.string "prometheus" "" (Export.metrics_prometheus snap));
    case "prometheus escapes backslash and newline in help" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let c =
              Metrics.counter ~registry:r ~help:"line1\nline2 \\ tail"
                "test_esc_total"
            in
            Metrics.incr c;
            let text = Export.metrics_prometheus (Metrics.snapshot_of r) in
            check Alcotest.bool "escaped help line" true
              (contains_sub text
                 "# HELP test_esc_total line1\\nline2 \\\\ tail");
            check Alcotest.bool "no raw newline inside help" false
              (contains_sub text "line1\nline2")));
    case "hdr metric exports as histogram with exact single-sample quantiles"
      (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.hdr_histogram ~registry:r "test_hdr_export_ns" in
            Metrics.observe_hdr h 12_345;
            let line =
              String.trim (Export.metrics_jsonl (Metrics.snapshot_of r))
            in
            let j = Json.parse_exn line in
            check Alcotest.bool "type histogram" true
              (Json.member "type" j = Some (Json.String "histogram"));
            List.iter
              (fun key ->
                check Alcotest.bool (key ^ " exact") true
                  (Json.member key j = Some (Json.Int 12_345)))
              [ "p50"; "p90"; "p99"; "p999"; "min"; "max" ];
            check Alcotest.bool "count" true
              (Json.member "count" j = Some (Json.Int 1))));
    case "hdr metric exports as a prometheus summary" (fun () ->
        with_metrics (fun () ->
            let r = Metrics.create () in
            let h = Metrics.hdr_histogram ~registry:r "test_hdr_prom_ns" in
            List.iter (Metrics.observe_hdr h) [ 10; 20; 30 ];
            let text = Export.metrics_prometheus (Metrics.snapshot_of r) in
            check Alcotest.bool "TYPE summary" true
              (contains_sub text "# TYPE test_hdr_prom_ns summary");
            check Alcotest.bool "median quantile" true
              (contains_sub text "test_hdr_prom_ns{quantile=\"0.5\"} 20");
            check Alcotest.bool "p999 quantile" true
              (contains_sub text "test_hdr_prom_ns{quantile=\"0.999\"} 30");
            check Alcotest.bool "sum" true
              (contains_sub text "test_hdr_prom_ns_sum 60");
            check Alcotest.bool "count" true
              (contains_sub text "test_hdr_prom_ns_count 3")));
    case "chrome trace events parse back with scoped instants" (fun () ->
        with_trace (fun () ->
            Trace.clear ();
            Trace.emit (Trace.Link_cas { ok = false });
            Trace.emit (Trace.Instant { name = "tick" });
            let doc =
              Json.parse_exn (Export.chrome_trace_string (Trace.dump ()))
            in
            (match doc with
            | Json.List events ->
              let named name =
                List.find
                  (fun e -> Json.member "name" e = Some (Json.String name))
                  events
              in
              let link = named "link_cas" in
              (match Json.member "args" link with
              | Some args ->
                check Alcotest.bool "ok arg round-trips" true
                  (Json.member "ok" args = Some (Json.Bool false))
              | None -> Alcotest.fail "link_cas has no args");
              check Alcotest.bool "instant has a scope" true
                (Json.member "s" (named "tick") <> None)
            | _ -> Alcotest.fail "chrome trace is not a JSON array");
            Trace.clear ()));
  ]

(* ---------------------------------------------------------- contention *)

let with_contention f =
  Dsu.Contention.set_enabled true;
  Dsu.Contention.reset ();
  Fun.protect
    ~finally:(fun () ->
      Dsu.Contention.set_enabled false;
      Dsu.Contention.reset ())
    f

let site_stat report site =
  match
    List.find_opt
      (fun (s : Dsu.Contention.site_stat) -> s.site = site)
      report.Dsu.Contention.sites
  with
  | Some s -> s
  | None ->
    Alcotest.fail ("no stats for site " ^ Repro_fault.Site.to_string site)

let contention_tests =
  [
    case "recording keys by site label, ranks hot nodes" (fun () ->
        with_contention (fun () ->
            (* Drive the Dsu_obs hooks directly: deterministic outcomes. *)
            Dsu.Obs.on_link_cas ~node:1 ~ok:false;
            Dsu.Obs.on_link_cas ~node:1 ~ok:false;
            Dsu.Obs.on_link_cas ~node:1 ~ok:false;
            Dsu.Obs.on_link_cas ~node:4 ~ok:true;
            Dsu.Obs.on_compaction_cas ~node:9 ~ok:false;
            Dsu.Obs.on_compaction_cas ~node:2 ~ok:true;
            Dsu.Obs.on_outer_retry ();
            Dsu.Obs.on_outer_retry ();
            let r = Dsu.Contention.report () in
            let link = site_stat r Repro_fault.Site.Link_cas in
            let split = site_stat r Repro_fault.Site.Split_cas in
            check Alcotest.int "link ok" 1 link.ok;
            check Alcotest.int "link fail" 3 link.fail;
            check Alcotest.int "split ok" 1 split.ok;
            check Alcotest.int "split fail" 1 split.fail;
            check Alcotest.int "outer retries" 2 r.Dsu.Contention.outer_retries;
            check Alcotest.int "total failures" 4
              (Dsu.Contention.total_failures r);
            check
              (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
              "hot nodes by failure count"
              [ (1, 3); (9, 1) ]
              (Dsu.Contention.hot_nodes r);
            check Alcotest.(array int) "heatmap over [0,16) in 4 buckets"
              [| 3; 0; 1; 0 |]
              (Dsu.Contention.heatmap ~buckets:4 ~n:16 r);
            check (Alcotest.float 1e-9) "root failure share" 0.75
              (Dsu.Contention.root_failure_share
                 ~is_root:(fun node -> node = 1)
                 r)));
    case "recording is off while disarmed" (fun () ->
        Dsu.Contention.reset ();
        check Alcotest.bool "disarmed" false (Dsu.Contention.enabled ());
        Dsu.Obs.on_link_cas ~node:3 ~ok:false;
        Dsu.Obs.on_outer_retry ();
        let r = Dsu.Contention.report () in
        check Alcotest.int "nothing recorded" 0
          (Dsu.Contention.total_failures r);
        check Alcotest.int "no retries" 0 r.Dsu.Contention.outer_retries);
    case "to_json emits the dsu-contention/v1 document" (fun () ->
        with_contention (fun () ->
            Dsu.Obs.on_link_cas ~node:5 ~ok:false;
            Dsu.Obs.on_compaction_cas ~node:5 ~ok:true;
            let r = Dsu.Contention.report () in
            let j =
              Dsu.Contention.to_json
                ~is_root:(fun node -> node = 5)
                ~heatmap_buckets:4 ~n:16 r
            in
            (* Serializing and reparsing exercises the whole path. *)
            let j = Json.parse_exn (Json.to_string j) in
            check Alcotest.bool "schema" true
              (Json.member "schema" j
              = Some (Json.String "dsu-contention/v1"));
            (match Json.member "sites" j with
            | Some (Json.List sites) ->
              check Alcotest.int "both sites present" 2 (List.length sites);
              let labels =
                List.filter_map (fun s -> Json.member "site" s) sites
              in
              check Alcotest.bool "site labels" true
                (labels
                = [ Json.String "link-cas"; Json.String "split-cas" ])
            | _ -> Alcotest.fail "sites missing");
            check Alcotest.bool "total failures" true
              (Json.member "total_cas_failures" j = Some (Json.Int 1));
            (match Json.member "hot_nodes" j with
            | Some (Json.List [ hot ]) ->
              check Alcotest.bool "node" true
                (Json.member "node" hot = Some (Json.Int 5));
              check Alcotest.bool "is_root annotation" true
                (Json.member "is_root" hot = Some (Json.Bool true))
            | _ -> Alcotest.fail "expected one hot node");
            match Json.member "heatmap" j with
            | Some heat ->
              check Alcotest.bool "universe" true
                (Json.member "universe" heat = Some (Json.Int 16))
            | None -> Alcotest.fail "heatmap missing"));
    case "multi-domain race attributes a lost linking CAS to its node"
      (fun () ->
        (* A genuine cross-domain race cannot be provoked reliably on an
           arbitrary (possibly single-core) runner, so the fault engine
           holds the victim inside the window instead: a [Stall] at
           [Link_cas_pre] parks the victim between reading the root and
           CASing it, the main domain observes the stall counter and
           links first, and the victim's CAS then genuinely fails. *)
        let module Fi = Repro_fault.Inject in
        with_contention (fun () ->
            let raced = ref false in
            let stall = ref 2_000_000 and tries = ref 0 in
            while (not !raced) && !tries < 8 do
              incr tries;
              let d = Dsu.Native.create ~seed:(!tries) 2 in
              Fi.arm
                {
                  seed = !tries;
                  rules_for =
                    (fun slot ->
                      if slot = 0 then
                        [
                          Fi.rule
                            ~sites:[ Repro_fault.Site.Link_cas_pre ]
                            (Fi.Stall !stall);
                        ]
                      else []);
                };
              let victim =
                Domain.spawn (fun () ->
                    Fi.enroll ~slot:0;
                    Dsu.Native.unite d 0 1)
              in
              (* Wait (bounded) for the victim to park inside the window,
                 then steal the link. *)
              let deadline = Repro_obs.Clock.now_ns () + 2_000_000_000 in
              while
                (Fi.totals ()).Fi.stalls = 0
                && Repro_obs.Clock.now_ns () < deadline
              do
                Domain.cpu_relax ()
              done;
              Dsu.Native.unite d 0 1;
              Domain.join victim;
              Fi.disarm ();
              let r = Dsu.Contention.report () in
              if Dsu.Contention.total_failures r > 0 then raced := true
              else stall := !stall * 2
            done;
            let r = Dsu.Contention.report () in
            let link = site_stat r Repro_fault.Site.Link_cas in
            check Alcotest.bool "a linking CAS succeeded" true (link.ok > 0);
            check Alcotest.bool "the victim's CAS failed" true (link.fail > 0);
            check Alcotest.bool "failures keyed by the Link_cas site" true
              (Dsu.Contention.total_failures r > 0);
            (* Both nodes of the 2-element universe were roots when
               contended; the loser is charged to the node it CASed. *)
            List.iter
              (fun (node, c) ->
                check Alcotest.bool "node in universe" true
                  (node >= 0 && node < 2);
                check Alcotest.bool "positive count" true (c > 0))
              r.Dsu.Contention.node_failures;
            let heat = Dsu.Contention.heatmap ~buckets:2 ~n:2 r in
            check Alcotest.int "heatmap conserves failures"
              (Dsu.Contention.total_failures r)
              (Array.fold_left ( + ) 0 heat)));
  ]

(* ------------------------------------------- integration with the DSU *)

let integration_tests =
  [
    case "native ops populate metrics that match Dsu_stats" (fun () ->
        with_metrics (fun () ->
            Metrics.reset ();
            let n = 512 in
            let d = Dsu.Native.create ~collect_stats:true ~seed:11 n in
            for i = 0 to n - 2 do
              Dsu.Native.unite d i (i + 1)
            done;
            for i = 0 to n - 1 do
              ignore (Dsu.Native.same_set d i 0 : bool)
            done;
            let stats = Dsu.Native.stats d in
            let snap = Metrics.snapshot () in
            let counter name =
              match counter_value_of snap name with
              | Some v -> v
              | None -> Alcotest.fail (name ^ " not registered")
            in
            check Alcotest.int "link cas ok = links" stats.Dsu.Stats.links
              (counter "dsu_link_cas_ok_total");
            check Alcotest.int "link cas fail"
              stats.Dsu.Stats.link_cas_failures
              (counter "dsu_link_cas_fail_total");
            check Alcotest.int "compaction cas"
              stats.Dsu.Stats.compaction_cas
              (counter "dsu_compaction_cas_ok_total"
              + counter "dsu_compaction_cas_fail_total");
            check Alcotest.int "finds" stats.Dsu.Stats.find_calls
              (counter "dsu_find_total");
            check Alcotest.int "ops" (2 * n - 1) (counter "dsu_ops_total");
            Metrics.reset ()));
    case "run_sim attaches a registry snapshot" (fun () ->
        with_metrics (fun () ->
            Metrics.reset ();
            let ops =
              [|
                [ Workload.Op.Unite (0, 1); Workload.Op.Same_set (0, 1) ];
                [ Workload.Op.Unite (2, 3); Workload.Op.Find 0 ];
              |]
            in
            let r = Harness.Measure.run_sim ~n:4 ~seed:5 ~ops () in
            let steps =
              match counter_value_of r.Harness.Measure.obs "apram_steps_total" with
              | Some v -> v
              | None -> Alcotest.fail "apram_steps_total missing"
            in
            check Alcotest.int "snapshot steps = simulator steps"
              r.Harness.Measure.total_steps steps;
            Metrics.reset ()));
    case "Dsu_stats.to_json parses and matches the snapshot" (fun () ->
        let d = Dsu.Native.create ~collect_stats:true ~seed:3 64 in
        for i = 0 to 62 do
          Dsu.Native.unite d i (i + 1)
        done;
        let s = Dsu.Native.stats d in
        let j = Json.parse_exn (Dsu.Stats.to_json s) in
        check Alcotest.bool "links field" true
          (Json.member "links" j = Some (Json.Int s.Dsu.Stats.links));
        check Alcotest.bool "find_iters field" true
          (Json.member "find_iters" j = Some (Json.Int s.Dsu.Stats.find_iters));
        check Alcotest.bool "total_work field" true
          (Json.member "total_work" j
          = Some (Json.Int (Dsu.Stats.total_work s))));
  ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("hdr", hdr_tests);
      ("reservoir", reservoir_tests);
      ("trace", trace_tests);
      ("exporters", exporter_tests);
      ("contention", contention_tests);
      ("integration", integration_tests);
    ]
