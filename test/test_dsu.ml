(* Tests for the concurrent DSU: the native instantiation driven
   sequentially against the quick-find oracle, the simulator instantiation
   under many schedulers, instrumentation, and the data-structure invariants
   of Lemma 3.1. *)

module Native = Dsu.Native
module Sim = Dsu.Sim
module Policy = Dsu.Find_policy
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let all_variants =
  List.concat_map
    (fun policy -> [ (policy, false); (policy, true) ])
    Policy.all

let variant_name (policy, early) =
  Printf.sprintf "%s%s" (Policy.to_string policy) (if early then "+early" else "")

(* Run the same random operation sequence through the native DSU and the
   quick-find oracle, checking every query answer on the way. *)
let oracle_run ?memory_order ?backoff ~policy ~early ~n ~ops ~seed () =
  let d = Native.create ?memory_order ?backoff ~policy ~early ~seed n in
  let q = Quick_find.create n in
  List.iter
    (fun op ->
      match op with
      | Workload.Op.Unite (x, y) ->
        Native.unite d x y;
        Quick_find.unite q x y
      | Workload.Op.Same_set (x, y) ->
        check Alcotest.bool
          (Printf.sprintf "same_set %d %d" x y)
          (Quick_find.same_set q x y) (Native.same_set d x y)
      | Workload.Op.Find x ->
        let r = Native.find d x in
        check Alcotest.bool "find returns member of own class" true
          (Quick_find.same_set q x r))
    ops;
  (d, q)

let random_ops rng ~n ~m =
  List.init m (fun _ ->
      let x = Rng.int rng n and y = Rng.int rng n in
      match Rng.int rng 3 with
      | 0 -> Workload.Op.Unite (x, y)
      | 1 -> Workload.Op.Same_set (x, y)
      | _ -> Workload.Op.Find x)

(* --------------------------------------------------------------- native *)

let basic_tests =
  [
    case "singletons at creation" (fun () ->
        let d = Native.create ~seed:1 10 in
        check Alcotest.int "count" 10 (Native.count_sets d);
        check Alcotest.bool "not same" false (Native.same_set d 0 1);
        check Alcotest.bool "self same" true (Native.same_set d 3 3);
        check Alcotest.bool "root" true (Native.is_root d 4));
    case "unite then same_set" (fun () ->
        let d = Native.create ~seed:2 10 in
        Native.unite d 0 1;
        check Alcotest.bool "0~1" true (Native.same_set d 0 1);
        check Alcotest.bool "0!~2" false (Native.same_set d 0 2);
        check Alcotest.int "count" 9 (Native.count_sets d));
    case "transitive unions" (fun () ->
        let d = Native.create ~seed:3 10 in
        Native.unite d 0 1;
        Native.unite d 2 3;
        Native.unite d 1 2;
        check Alcotest.bool "0~3" true (Native.same_set d 0 3);
        check Alcotest.int "count" 7 (Native.count_sets d));
    case "unite is idempotent" (fun () ->
        let d = Native.create ~seed:4 5 in
        Native.unite d 0 1;
        Native.unite d 0 1;
        Native.unite d 1 0;
        check Alcotest.int "count" 4 (Native.count_sets d));
    case "unite with self is a no-op" (fun () ->
        let d = Native.create ~seed:5 5 in
        Native.unite d 2 2;
        check Alcotest.int "count" 5 (Native.count_sets d));
    case "find returns a root in the same set" (fun () ->
        let d = Native.create ~seed:6 8 in
        Native.unite d 0 1;
        Native.unite d 1 2;
        let r = Native.find d 0 in
        check Alcotest.bool "root" true (Native.is_root d r);
        check Alcotest.bool "same set" true (Native.same_set d r 2));
    case "n accessor" (fun () ->
        check Alcotest.int "n" 42 (Native.n (Native.create ~seed:7 42)));
    case "create rejects n < 1" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Dsu_native.create: n must be >= 1") (fun () ->
            ignore (Native.create 0)));
    case "out-of-range nodes rejected" (fun () ->
        let d = Native.create ~seed:8 5 in
        Alcotest.check_raises "unite" (Invalid_argument "Dsu: node out of range")
          (fun () -> Native.unite d 0 5);
        Alcotest.check_raises "same_set" (Invalid_argument "Dsu: node out of range")
          (fun () -> ignore (Native.same_set d (-1) 0));
        Alcotest.check_raises "find" (Invalid_argument "Dsu: node out of range")
          (fun () -> ignore (Native.find d 5)));
    case "ids form a permutation" (fun () ->
        let n = 64 in
        let d = Native.create ~seed:9 n in
        let seen = Array.make n false in
        for i = 0 to n - 1 do
          let id = Native.id d i in
          check Alcotest.bool "range" true (id >= 0 && id < n);
          check Alcotest.bool "fresh" false seen.(id);
          seen.(id) <- true
        done);
    case "same seed gives same ids" (fun () ->
        let a = Native.create ~seed:10 32 and b = Native.create ~seed:10 32 in
        for i = 0 to 31 do
          check Alcotest.int (string_of_int i) (Native.id a i) (Native.id b i)
        done);
    case "n = 1 works" (fun () ->
        let d = Native.create ~seed:11 1 in
        check Alcotest.bool "self" true (Native.same_set d 0 0);
        Native.unite d 0 0;
        check Alcotest.int "count" 1 (Native.count_sets d));
  ]

let oracle_tests =
  List.map
    (fun ((policy, early) as v) ->
      case (Printf.sprintf "matches quick-find oracle (%s)" (variant_name v))
        (fun () ->
          let rng = Rng.create 123 in
          let n = 64 in
          let ops = random_ops rng ~n ~m:600 in
          let d, q = oracle_run ~policy ~early ~n ~ops ~seed:55 () in
          check Alcotest.int "count_sets" (Quick_find.count_sets q)
            (Native.count_sets d);
          check Alcotest.(list int) "no invariant violations" []
            (List.map fst (Native.invariant_violations d))))
    all_variants

let invariant_tests =
  [
    case "id-monotone parents after random run (Lemma 3.1)" (fun () ->
        List.iter
          (fun (policy, early) ->
            let rng = Rng.create 77 in
            let n = 256 in
            let d = Native.create ~policy ~early ~seed:14 n in
            Workload.Op.run_native d
              (Workload.Random_mix.mixed ~rng ~n ~m:2000 ~unite_fraction:0.5);
            check Alcotest.int (variant_name (policy, early)) 0
              (List.length (Native.invariant_violations d)))
          all_variants);
    case "parents_snapshot is acyclic" (fun () ->
        let rng = Rng.create 88 in
        let n = 128 in
        let d = Native.create ~seed:15 n in
        Workload.Op.run_native d (Workload.Random_mix.spanning_unites ~rng ~n);
        let parents = Native.parents_snapshot d in
        Array.iteri
          (fun i _ ->
            let u = ref i and hops = ref 0 in
            while parents.(!u) <> !u && !hops <= n do
              u := parents.(!u);
              incr hops
            done;
            check Alcotest.bool (string_of_int i) true (!hops <= n))
          parents);
    case "on_link reports every successful link exactly once" (fun () ->
        let n = 100 in
        let links = ref [] in
        let d =
          Native.create ~seed:16
            ~on_link:(fun ~child ~parent -> links := (child, parent) :: !links)
            n
        in
        let rng = Rng.create 99 in
        Workload.Op.run_native d (Workload.Random_mix.spanning_unites ~rng ~n);
        check Alcotest.int "n-1 links" (n - 1) (List.length !links);
        check Alcotest.int "single set" 1 (Native.count_sets d);
        List.iter
          (fun (child, parent) ->
            check Alcotest.bool "child differs" true (child <> parent);
            check Alcotest.bool "id increases" true
              (Native.id d child < Native.id d parent))
          !links);
  ]

let snapshot_tests =
  [
    case "sets returns the sorted partition" (fun () ->
        let d = Native.create ~seed:30 5 in
        Native.unite d 0 4;
        Native.unite d 1 2;
        check
          Alcotest.(list (list int))
          "sets"
          [ [ 0; 4 ]; [ 1; 2 ]; [ 3 ] ]
          (Native.sets d));
    case "snapshot/restore preserves the partition" (fun () ->
        let n = 60 in
        let d = Native.create ~seed:31 n in
        let rng = Rng.create 77 in
        Workload.Op.run_native d (Workload.Random_mix.random_pairs ~rng ~n ~m:100);
        let s = Native.snapshot d in
        let d' = Native.restore s in
        check Alcotest.(list (list int)) "partition" (Native.sets d) (Native.sets d');
        (* The restored structure remains fully usable. *)
        Native.unite d' 0 (n - 1);
        check Alcotest.bool "post-restore op" true (Native.same_set d' 0 (n - 1));
        check Alcotest.int "invariants" 0 (List.length (Native.invariant_violations d')));
    case "snapshot round-trips through a string" (fun () ->
        let n = 20 in
        let d = Native.create ~seed:32 n in
        Native.unite d 3 9;
        Native.unite d 9 15;
        let text = Native.snapshot_to_string (Native.snapshot d) in
        let d' = Native.restore (Native.snapshot_of_string text) in
        check Alcotest.(list (list int)) "partition" (Native.sets d) (Native.sets d'));
    case "restore validates its input" (fun () ->
        Alcotest.check_raises "perm"
          (Invalid_argument "Dsu_native.restore: ids are not a permutation")
          (fun () ->
            ignore
              (Native.snapshot_of_string "2 0 1 0 0" |> Native.restore));
        Alcotest.check_raises "order"
          (Invalid_argument "Dsu_native.restore: parents violate the linking order")
          (fun () ->
            (* node 0 (id 1) points at node 1 (id 0): order violated. *)
            ignore (Native.snapshot_of_string "2 1 1 1 0" |> Native.restore)));
    case "snapshot_of_string rejects malformed text" (fun () ->
        Alcotest.check_raises "count"
          (Invalid_argument "Dsu_native.snapshot_of_string: wrong field count")
          (fun () -> ignore (Native.snapshot_of_string "3 0 1"));
        Alcotest.check_raises "header"
          (Invalid_argument "Dsu_native.snapshot_of_string: bad header")
          (fun () -> ignore (Native.snapshot_of_string "zork 1 2")));
  ]

let stats_tests =
  [
    case "counters disabled by default" (fun () ->
        let d = Native.create ~seed:17 10 in
        Native.unite d 0 1;
        ignore (Native.same_set d 0 1);
        check Alcotest.int "unite calls" 0 (Native.stats d).Dsu.Stats.unite_calls);
    case "counters count calls" (fun () ->
        let d = Native.create ~collect_stats:true ~seed:18 10 in
        Native.unite d 0 1;
        Native.unite d 2 3;
        ignore (Native.same_set d 0 3);
        let s = Native.stats d in
        check Alcotest.int "unites" 2 s.Dsu.Stats.unite_calls;
        check Alcotest.int "same_sets" 1 s.Dsu.Stats.same_set_calls;
        check Alcotest.int "links" 2 s.Dsu.Stats.links;
        check Alcotest.bool "finds" true (s.Dsu.Stats.find_calls >= 5));
    case "links = n - count_sets" (fun () ->
        let n = 200 in
        let d = Native.create ~collect_stats:true ~seed:19 n in
        let rng = Rng.create 44 in
        Workload.Op.run_native d (Workload.Random_mix.random_pairs ~rng ~n ~m:300);
        let s = Native.stats d in
        check Alcotest.int "links" (n - Native.count_sets d) s.Dsu.Stats.links);
    case "reset_stats zeroes" (fun () ->
        let d = Native.create ~collect_stats:true ~seed:20 10 in
        Native.unite d 0 1;
        Native.reset_stats d;
        check Alcotest.int "zero" 0 (Native.stats d).Dsu.Stats.unite_calls);
    case "snapshot arithmetic" (fun () ->
        let open Dsu.Stats in
        let d = Native.create ~collect_stats:true ~seed:21 10 in
        Native.unite d 0 1;
        let s1 = Native.stats d in
        Native.unite d 2 3;
        let s2 = Native.stats d in
        let diff = sub s2 s1 in
        check Alcotest.int "delta unites" 1 diff.unite_calls;
        check Alcotest.int "add back" s2.unite_calls (add s1 diff).unite_calls;
        check Alcotest.bool "total_work positive" true (total_work s2 > 0));
  ]

(* ------------------------------------------------------------ simulator *)

let sim_partition_matches_oracle ~policy ~early ~sched ~n ~seed ops_per_proc =
  let spec = Sim.spec ~policy ~early ~n ~seed () in
  let h = Sim.handle spec in
  let bodies = Array.map (Workload.Op.to_sim_ops h) ops_per_proc in
  let outcome =
    Apram.Sim.run_ops ~mem_size:(Sim.mem_size spec) ~init:(Sim.init spec) ~sched
      bodies
  in
  let q = Quick_find.create n in
  Array.iter
    (fun ops ->
      List.iter
        (fun op ->
          match op with
          | Workload.Op.Unite (x, y) -> Quick_find.unite q x y
          | Workload.Op.Same_set _ | Workload.Op.Find _ -> ())
        ops)
    ops_per_proc;
  let got = Sim.sets_of_memory spec outcome.Apram.Sim.memory in
  check Alcotest.(list (list int)) "final partition" (Quick_find.classes q) got

let sim_tests =
  [
    case "final partition is schedule-independent" (fun () ->
        let rng = Rng.create 31 in
        let n = 24 in
        let ops =
          Array.init 3 (fun _ ->
              List.init 12 (fun _ ->
                  Workload.Op.Unite (Rng.int rng n, Rng.int rng n)))
        in
        List.iter
          (fun sched ->
            List.iter
              (fun (policy, early) ->
                sim_partition_matches_oracle ~policy ~early ~sched ~n ~seed:61 ops)
              all_variants)
          [
            Apram.Scheduler.round_robin ();
            Apram.Scheduler.sequential ();
            Apram.Scheduler.random ~seed:7;
            Apram.Scheduler.cas_adversary ~seed:8;
            Apram.Scheduler.laggard ~seed:9 ~victim:1 ~delay:6;
            Apram.Scheduler.quantum ~seed:10 ~quantum:4;
          ]);
    case "simulation is deterministic given seeds" (fun () ->
        let mk () =
          let rng = Rng.create 5 in
          let ops =
            Array.init 4 (fun _ ->
                List.init 20 (fun _ ->
                    Workload.Op.Unite (Rng.int rng 64, Rng.int rng 64)))
          in
          let r =
            Harness.Measure.run_sim ~policy:Policy.Two_try_splitting ~n:64 ~seed:3
              ~ops ()
          in
          (r.Harness.Measure.total_steps, Apram.Memory.snapshot r.Harness.Measure.memory)
        in
        let a = mk () and b = mk () in
        check Alcotest.int "steps" (fst a) (fst b);
        check Alcotest.(array int) "memory" (snd a) (snd b));
    case "sim id-monotonicity invariant holds in final memory" (fun () ->
        let rng = Rng.create 6 in
        let n = 64 in
        let spec = Sim.spec ~n ~seed:4 () in
        let h = Sim.handle spec in
        let ops =
          Array.init 4 (fun _ ->
              Workload.Op.to_sim_ops h
                (List.init 30 (fun _ ->
                     Workload.Op.Unite (Rng.int rng n, Rng.int rng n))))
        in
        let outcome =
          Apram.Sim.run_ops ~mem_size:n ~init:(Sim.init spec)
            ~sched:(Apram.Scheduler.cas_adversary ~seed:12) ops
        in
        let ids = spec.Sim.ids in
        for i = 0 to n - 1 do
          let p = Apram.Memory.peek outcome.Apram.Sim.memory i in
          check Alcotest.bool (string_of_int i) true (p = i || ids.(p) > ids.(i))
        done);
    case "same_set_op records results in history" (fun () ->
        let spec = Sim.spec ~n:4 ~seed:1 () in
        let h = Sim.handle spec in
        let ops =
          [| [ Sim.unite_op h 0 1; Sim.same_set_op h 0 1; Sim.same_set_op h 2 3 ] |]
        in
        let outcome =
          Apram.Sim.run_ops ~mem_size:4 ~init:(Sim.init spec)
            ~sched:(Apram.Scheduler.sequential ()) ops
        in
        let results =
          List.map
            (fun op -> (op.Apram.History.call.Apram.History.name, op.Apram.History.result))
            (Apram.History.complete_ops outcome.Apram.Sim.history)
        in
        check
          Alcotest.(list (pair string int))
          "history"
          [ ("unite", 0); ("same_set", 1); ("same_set", 0) ]
          results);
    case "wait-freedom under extreme starvation" (fun () ->
        let n = 16 in
        let spec = Sim.spec ~n ~seed:5 () in
        let h = Sim.handle spec in
        let victim_ops = [ Sim.same_set_op h 0 15 ] in
        let noise pid =
          List.init 40 (fun i -> Sim.unite_op h ((pid + i) mod n) (pid * i mod n))
        in
        let ops = [| victim_ops; noise 1; noise 2; noise 3 |] in
        let outcome =
          Apram.Sim.run_ops ~mem_size:n ~init:(Sim.init spec)
            ~sched:(Apram.Scheduler.laggard ~seed:33 ~victim:0 ~delay:50) ops
        in
        let victim_completed =
          List.exists
            (fun op -> op.Apram.History.pid = 0)
            (Apram.History.complete_ops outcome.Apram.Sim.history)
        in
        check Alcotest.bool "victim completed" true victim_completed);
    case "spec validates ids length" (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Dsu_sim.spec: ids length mismatch") (fun () ->
            ignore (Sim.spec ~ids:[| 0; 1 |] ~n:3 ~seed:1 ())));
    case "roots_of_memory resolves chains" (fun () ->
        let spec = Sim.spec ~n:4 ~ids:[| 0; 1; 2; 3 |] ~seed:1 () in
        let m = Apram.Memory.create 4 (fun i -> i) in
        Apram.Memory.poke m 0 1;
        Apram.Memory.poke m 1 2;
        let roots = Sim.roots_of_memory spec m in
        check Alcotest.(array int) "roots" [| 2; 2; 2; 3 |] roots);
  ]

(* Exhaustive interleaving check: two processes, all 2^k prefixes of
   schedules of a fixed workload, every policy.  The custom scheduler
   consumes a bit string (bit = which process steps next, falling back to
   whoever is runnable). *)
let exhaustive_tests =
  [
    case "every schedule of unite || same_set linearizes (full enumeration)"
      (fun () ->
        (* The fundamental race, verified over the complete schedule tree
           (not a sample): one process unites 0 and 1 while another queries
           them, for every policy.  Apram.Explore enumerates every
           interleaving. *)
        List.iter
          (fun policy ->
            let spec = Sim.spec ~policy ~n:3 ~seed:4 () in
            let make_ops () =
              let h = Sim.handle spec in
              [| [ Sim.unite_op h 0 1 ]; [ Sim.same_set_op h 0 1 ] |]
            in
            match
              Apram.Explore.run_all ~max_schedules:500_000 ~mem_size:3
                ~init:(Sim.init spec) ~make_ops
                ~check:(fun o ->
                  Lincheck.Checker.check ~n:3 o.Apram.Sim.history
                  = Lincheck.Checker.Linearizable)
                ()
            with
            | Ok s ->
              check Alcotest.bool
                (Printf.sprintf "%s complete" (Policy.to_string policy))
                false s.Apram.Explore.truncated;
              check Alcotest.bool "several schedules" true
                (s.Apram.Explore.schedules > 10)
            | Error v ->
              Alcotest.failf "policy %s, schedule %d not linearizable"
                (Policy.to_string policy) v.Apram.Explore.schedule_index)
          Policy.all);
    case "every schedule of racing unites yields the correct partition"
      (fun () ->
        (* unite(0,1) racing unite(1,2): whatever the interleaving, the
           final partition must be {0,1,2}. *)
        List.iter
          (fun policy ->
            let spec = Sim.spec ~policy ~n:3 ~seed:9 () in
            let make_ops () =
              let h = Sim.handle spec in
              [| [ Sim.unite_op h 0 1 ]; [ Sim.unite_op h 1 2 ] |]
            in
            match
              Apram.Explore.run_all ~max_schedules:500_000 ~mem_size:3
                ~init:(Sim.init spec) ~make_ops
                ~check:(fun o ->
                  Sim.sets_of_memory spec o.Apram.Sim.memory = [ [ 0; 1; 2 ] ])
                ()
            with
            | Ok s ->
              check Alcotest.bool
                (Printf.sprintf "%s complete" (Policy.to_string policy))
                false s.Apram.Explore.truncated
            | Error v ->
              Alcotest.failf "policy %s, schedule %d wrong partition"
                (Policy.to_string policy) v.Apram.Explore.schedule_index)
          Policy.all);
    case "all interleavings of a 2-process workload linearize" (fun () ->
        let n = 4 in
        let bits = 12 in
        for mask = 0 to (1 lsl bits) - 1 do
          List.iter
            (fun policy ->
              let spec = Sim.spec ~policy ~n ~seed:2 () in
              let h = Sim.handle spec in
              let ops =
                [|
                  [ Sim.unite_op h 0 1; Sim.same_set_op h 0 2 ];
                  [ Sim.unite_op h 1 2; Sim.same_set_op h 0 1 ];
                |]
              in
              let pos = ref 0 in
              let sched =
                Apram.Scheduler.custom ~name:"bits" (fun ~memory:_ pending ->
                    let bit = if !pos < bits then (mask lsr !pos) land 1 else 0 in
                    incr pos;
                    let want = if bit = 1 then 1 else 0 in
                    match
                      List.find_opt (fun p -> p.Apram.Scheduler.pid = want) pending
                    with
                    | Some p -> p.Apram.Scheduler.pid
                    | None -> (List.hd pending).Apram.Scheduler.pid)
              in
              let outcome =
                Apram.Sim.run_ops ~mem_size:n ~init:(Sim.init spec) ~sched ops
              in
              match Lincheck.Checker.check ~n outcome.Apram.Sim.history with
              | Lincheck.Checker.Linearizable -> ()
              | Lincheck.Checker.Not_linearizable msg ->
                Alcotest.fail
                  (Printf.sprintf "mask %d policy %s: %s" mask
                     (Policy.to_string policy) msg))
            Policy.all
        done);
  ]

(* ------------------------------------------------- memory-order modes *)

(* Every (memory_order, policy) combination must agree with the oracle and
   keep the forest invariants — the tuned read paths change no answers. *)
let memory_order_tests =
  List.concat_map
    (fun memory_order ->
      List.map
        (fun ((policy, early) as v) ->
          case
            (Printf.sprintf "oracle agreement under %s (%s)"
               (Dsu.Memory_order.to_string memory_order)
               (variant_name v))
            (fun () ->
              let rng = Rng.create 321 in
              let n = 64 in
              let ops = random_ops rng ~n ~m:600 in
              let d, q =
                oracle_run ~memory_order ~policy ~early ~n ~ops ~seed:77 ()
              in
              check Alcotest.int "count_sets" (Quick_find.count_sets q)
                (Native.count_sets d);
              check
                Alcotest.(list int)
                "no invariant violations" []
                (List.map fst (Native.invariant_violations d))))
        all_variants)
    Dsu.Memory_order.all
  @ [
      case "memory_order accessor reports the requested mode" (fun () ->
          List.iter
            (fun o ->
              let d = Native.create ~memory_order:o ~seed:1 8 in
              check Alcotest.bool
                (Dsu.Memory_order.to_string o)
                true
                (Dsu.Memory_order.equal o (Native.memory_order d)))
            Dsu.Memory_order.all;
          let d = Native.create ~seed:1 8 in
          check Alcotest.bool "default" true
            (Dsu.Memory_order.equal Dsu.Memory_order.default
               (Native.memory_order d)));
      case "backoff off matches oracle too" (fun () ->
          let rng = Rng.create 322 in
          let n = 48 in
          let ops = random_ops rng ~n ~m:400 in
          let d, q =
            oracle_run ~backoff:false ~policy:Policy.Two_try_splitting
              ~early:false ~n ~ops ~seed:78 ()
          in
          check Alcotest.int "count_sets" (Quick_find.count_sets q)
            (Native.count_sets d));
    ]

(* ------------------------------------- spurious weak-CAS failure model *)

(* A memory whose weak CAS fails spuriously (seeded, 25% of attempts) on
   top of the real flat array.  Two-try splitting's semantics must be
   unaffected: a spurious splitting failure is exactly a failed try, which
   Algorithms 4/5 already tolerate. *)
module Flaky_memory = struct
  type t = {
    inner : Dsu.Native_memory.t;
    rng : Rng.t;
    mutable spurious : int;
    mutable attempts : int;
  }

  let read t i = Dsu.Native_memory.read t.inner i
  let cas t i e d = Dsu.Native_memory.cas t.inner i e d

  let cas_weak t i e d =
    t.attempts <- t.attempts + 1;
    if Rng.int t.rng 4 = 0 then begin
      t.spurious <- t.spurious + 1;
      false
    end
    else Dsu.Native_memory.cas_weak t.inner i e d

  let prefetch t i = Dsu.Native_memory.prefetch t.inner i
end

module Flaky = Dsu.Algorithm.Make (Flaky_memory)

let flaky_tests =
  let make_flaky ~policy ~early ~n ~seed =
    let rng = Rng.create seed in
    let prios = Array.init n (fun _ -> Rng.int rng (n * n)) in
    let mem =
      {
        Flaky_memory.inner = Dsu.Native_memory.make n (fun i -> i);
        rng = Rng.create (seed + 1);
        spurious = 0;
        attempts = 0;
      }
    in
    (Flaky.create ~policy ~early ~mem ~n ~prio:(fun i -> prios.(i)) (), mem)
  in
  List.map
    (fun ((policy, early) as v) ->
      case
        (Printf.sprintf "spurious cas_weak failures preserve semantics (%s)"
           (variant_name v))
        (fun () ->
          let n = 64 in
          let d, mem = make_flaky ~policy ~early ~n ~seed:91 in
          let q = Quick_find.create n in
          let rng = Rng.create 92 in
          List.iter
            (fun op ->
              match op with
              | Workload.Op.Unite (x, y) ->
                Flaky.unite d x y;
                Quick_find.unite q x y
              | Workload.Op.Same_set (x, y) ->
                check Alcotest.bool
                  (Printf.sprintf "same_set %d %d" x y)
                  (Quick_find.same_set q x y) (Flaky.same_set d x y)
              | Workload.Op.Find x ->
                let r = Flaky.find d x in
                check Alcotest.bool "find lands in own class" true
                  (Quick_find.same_set q x r))
            (random_ops rng ~n ~m:800);
          check Alcotest.int "count_sets" (Quick_find.count_sets q)
            (Flaky.count_sets d);
          check
            Alcotest.(list int)
            "no invariant violations" []
            (List.map fst (Flaky.invariant_violations d));
          (* The test only means something if splitting actually went
             through the weak CAS and failures actually fired. *)
          if policy <> Policy.No_compaction then begin
            check Alcotest.bool "weak CAS attempted" true
              (mem.Flaky_memory.attempts > 0);
            check Alcotest.bool "spurious failures injected" true
              (mem.Flaky_memory.spurious > 0)
          end))
    all_variants

(* ---------------------------------------------------------- bulk kernels *)

let batch_tests =
  [
    case "unite_batch equals the per-op loop" (fun () ->
        let n = 256 and m = 500 in
        let rng = Rng.create 131 in
        let xs = Array.init m (fun _ -> Rng.int rng n) in
        let ys = Array.init m (fun _ -> Rng.int rng n) in
        let db = Native.create ~seed:17 n in
        let dp = Native.create ~seed:17 n in
        Native.unite_batch db xs ys;
        for k = 0 to m - 1 do
          Native.unite dp xs.(k) ys.(k)
        done;
        check Alcotest.int "count_sets" (Native.count_sets dp)
          (Native.count_sets db);
        for x = 0 to n - 1 do
          check Alcotest.bool (string_of_int x) true
            (Native.same_set dp x 0 = Native.same_set db x 0)
        done;
        check
          Alcotest.(list int)
          "no invariant violations" []
          (List.map fst (Native.invariant_violations db)));
    case "same_set_batch answers match the oracle" (fun () ->
        let n = 256 in
        let rng = Rng.create 137 in
        let d = Native.create ~seed:19 n in
        let q = Quick_find.create n in
        for _ = 1 to 300 do
          let x = Rng.int rng n and y = Rng.int rng n in
          Native.unite d x y;
          Quick_find.unite q x y
        done;
        let m = 400 in
        let xs = Array.init m (fun _ -> Rng.int rng n) in
        let ys = Array.init m (fun _ -> Rng.int rng n) in
        let got = Native.same_set_batch d xs ys in
        check Alcotest.int "answer count" m (Array.length got);
        Array.iteri
          (fun k ans ->
            check Alcotest.bool
              (Printf.sprintf "pair %d" k)
              (Quick_find.same_set q xs.(k) ys.(k))
              ans)
          got);
    case "batch kernels respect early-termination structures" (fun () ->
        (* Kernels use the plain rounds regardless of ~early; answers must
           still agree with the oracle on an early-termination handle. *)
        let n = 128 in
        let rng = Rng.create 139 in
        let d = Native.create ~early:true ~seed:23 n in
        let q = Quick_find.create n in
        let m = 200 in
        let xs = Array.init m (fun _ -> Rng.int rng n) in
        let ys = Array.init m (fun _ -> Rng.int rng n) in
        Native.unite_batch d xs ys;
        Array.iteri (fun k x -> Quick_find.unite q x ys.(k)) xs;
        let got = Native.same_set_batch d xs ys in
        Array.iteri
          (fun k ans ->
            check Alcotest.bool
              (Printf.sprintf "pair %d" k)
              (Quick_find.same_set q xs.(k) ys.(k))
              ans)
          got);
    case "empty batches are no-ops" (fun () ->
        let d = Native.create ~seed:29 8 in
        Native.unite_batch d [||] [||];
        check Alcotest.int "answers" 0
          (Array.length (Native.same_set_batch d [||] [||]));
        check Alcotest.int "count" 8 (Native.count_sets d));
    case "length mismatch and range errors rejected" (fun () ->
        let d = Native.create ~seed:31 8 in
        Alcotest.check_raises "unite_batch mismatch"
          (Invalid_argument "Dsu.unite_batch: endpoint arrays differ in length")
          (fun () -> Native.unite_batch d [| 0 |] [| 1; 2 |]);
        Alcotest.check_raises "same_set_batch mismatch"
          (Invalid_argument
             "Dsu.same_set_batch: endpoint arrays differ in length") (fun () ->
            ignore (Native.same_set_batch d [| 0; 1 |] [| 1 |]));
        Alcotest.check_raises "out of range"
          (Invalid_argument "Dsu: node out of range") (fun () ->
            Native.unite_batch d [| 0 |] [| 8 |]);
        (* Validation happens before any mutation. *)
        check Alcotest.int "untouched" 8 (Native.count_sets d));
    case "batched op runner equals the plain runner" (fun () ->
        let n = 128 in
        let rng = Rng.create 149 in
        (* Long same-kind runs (so the kernels actually engage) mixed with
           alternating stretches and finds (so the fallback engages too). *)
        let ops =
          Array.concat
            [
              Array.init 100 (fun _ ->
                  Workload.Op.Unite (Rng.int rng n, Rng.int rng n));
              Array.init 100 (fun _ ->
                  Workload.Op.Same_set (Rng.int rng n, Rng.int rng n));
              Array.init 100 (fun _ ->
                  match Rng.int rng 3 with
                  | 0 -> Workload.Op.Unite (Rng.int rng n, Rng.int rng n)
                  | 1 -> Workload.Op.Same_set (Rng.int rng n, Rng.int rng n)
                  | _ -> Workload.Op.Find (Rng.int rng n));
            ]
        in
        let da = Native.create ~seed:37 n in
        let db = Native.create ~seed:37 n in
        Workload.Op.run_native_array da ops;
        Workload.Op.run_native_array_batched db ops;
        check Alcotest.int "count_sets" (Native.count_sets da)
          (Native.count_sets db);
        for x = 0 to n - 1 do
          check Alcotest.bool (string_of_int x) true
            (Native.same_set da x 0 = Native.same_set db x 0)
        done);
  ]

let () =
  Alcotest.run "dsu"
    [
      ("basics", basic_tests);
      ("oracle", oracle_tests);
      ("invariants", invariant_tests);
      ("snapshot", snapshot_tests);
      ("stats", stats_tests);
      ("memory_order", memory_order_tests);
      ("flaky_cas", flaky_tests);
      ("batch", batch_tests);
      ("simulator", sim_tests);
      ("exhaustive", exhaustive_tests);
    ]
