(* Tests for the sequential DSU suite (Section 2's twelve variants) and the
   quick-find reference implementation. *)

module Seq = Sequential.Seq_dsu
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let all_variants =
  List.concat_map
    (fun linking -> List.map (fun compaction -> (linking, compaction)) Seq.all_compactions)
    Seq.all_linkings
  |> List.filter (fun (l, c) -> Seq.valid_combination l c)

let variant_name (linking, compaction) =
  Printf.sprintf "%s/%s" (Seq.linking_to_string linking)
    (Seq.compaction_to_string compaction)

(* ------------------------------------------------------------ quick_find *)

let quick_find_tests =
  [
    case "initial singletons" (fun () ->
        let q = Quick_find.create 5 in
        check Alcotest.int "count" 5 (Quick_find.count_sets q);
        check Alcotest.bool "0!~1" false (Quick_find.same_set q 0 1));
    case "unite and transitivity" (fun () ->
        let q = Quick_find.create 5 in
        Quick_find.unite q 0 1;
        Quick_find.unite q 1 2;
        check Alcotest.bool "0~2" true (Quick_find.same_set q 0 2);
        check Alcotest.int "count" 3 (Quick_find.count_sets q));
    case "label is smallest member" (fun () ->
        let q = Quick_find.create 5 in
        Quick_find.unite q 4 2;
        Quick_find.unite q 2 3;
        check Alcotest.int "label 4" 2 (Quick_find.label q 4);
        check Alcotest.int "label 3" 2 (Quick_find.label q 3));
    case "classes are sorted" (fun () ->
        let q = Quick_find.create 4 in
        Quick_find.unite q 3 1;
        check
          Alcotest.(list (list int))
          "classes"
          [ [ 0 ]; [ 1; 3 ]; [ 2 ] ]
          (Quick_find.classes q));
    case "copy is independent" (fun () ->
        let q = Quick_find.create 4 in
        Quick_find.unite q 0 1;
        let q' = Quick_find.copy q in
        Quick_find.unite q' 2 3;
        check Alcotest.bool "orig unaffected" false (Quick_find.same_set q 2 3);
        check Alcotest.bool "copy sees both" true
          (Quick_find.same_set q' 0 1 && Quick_find.same_set q' 2 3));
    case "equal compares partitions" (fun () ->
        let a = Quick_find.create 4 and b = Quick_find.create 4 in
        Quick_find.unite a 0 1;
        check Alcotest.bool "differ" false (Quick_find.equal a b);
        Quick_find.unite b 1 0;
        check Alcotest.bool "equal" true (Quick_find.equal a b));
    case "canonical encoding" (fun () ->
        let q = Quick_find.create 3 in
        Quick_find.unite q 0 2;
        check Alcotest.string "canonical" "0,2|1" (Quick_find.canonical q));
    case "out-of-range rejected" (fun () ->
        let q = Quick_find.create 3 in
        Alcotest.check_raises "oob" (Invalid_argument "Quick_find: node out of range")
          (fun () -> ignore (Quick_find.label q 3)));
  ]

(* --------------------------------------------------------------- seq_dsu *)

let oracle_test (linking, compaction) =
  case (Printf.sprintf "matches oracle (%s)" (variant_name (linking, compaction)))
    (fun () ->
      let n = 80 in
      let d = Seq.create ~linking ~compaction ~seed:5 n in
      let q = Quick_find.create n in
      let rng = Rng.create 17 in
      for _ = 1 to 800 do
        let x = Rng.int rng n and y = Rng.int rng n in
        if Rng.bool rng then begin
          Seq.unite d x y;
          Quick_find.unite q x y
        end
        else
          check Alcotest.bool "query" (Quick_find.same_set q x y) (Seq.same_set d x y)
      done;
      check Alcotest.int "count" (Quick_find.count_sets q) (Seq.count_sets d))

let seq_dsu_tests =
  List.map oracle_test all_variants
  @ [
      case "find returns the root" (fun () ->
          let d = Seq.create 10 in
          Seq.unite d 0 1;
          Seq.unite d 1 2;
          let r = Seq.find d 0 in
          check Alcotest.int "root is its own parent" r (Seq.parent_of d r);
          check Alcotest.int "same root" r (Seq.find d 2));
      case "counters track links" (fun () ->
          let n = 50 in
          let d = Seq.create n in
          let rng = Rng.create 3 in
          for _ = 1 to 100 do
            Seq.unite d (Rng.int rng n) (Rng.int rng n)
          done;
          let c = Seq.counters d in
          check Alcotest.int "links" (n - Seq.count_sets d) c.Seq.links;
          check Alcotest.int "unites" 100 c.Seq.unites;
          check Alcotest.bool "work positive" true (Seq.total_work c > 0));
      case "reset_counters" (fun () ->
          let d = Seq.create 10 in
          Seq.unite d 0 1;
          Seq.reset_counters d;
          check Alcotest.int "zero" 0 (Seq.counters d).Seq.finds);
      case "compaction shortens repeated finds" (fun () ->
          (* Build a deliberately deep structure with no compaction, then a
             second find with splitting must traverse fewer nodes. *)
          List.iter
            (fun compaction ->
              let n = 512 in
              let d = Seq.create ~linking:Seq.By_random ~compaction ~seed:5 n in
              let rng = Rng.create 7 in
              Workload.Op.run_seq d (Workload.Random_mix.spanning_unites ~rng ~n);
              Seq.reset_counters d;
              ignore (Seq.find d 0);
              let first = (Seq.counters d).Seq.find_iters in
              ignore (Seq.find d 0);
              let second = (Seq.counters d).Seq.find_iters - first in
              check Alcotest.bool
                (Seq.compaction_to_string compaction)
                true (second <= first))
            [ Seq.Halving; Seq.Splitting; Seq.Compression ]);
      case "compression makes paths length one" (fun () ->
          let n = 64 in
          let d = Seq.create ~compaction:Seq.Compression ~seed:9 n in
          let rng = Rng.create 11 in
          Workload.Op.run_seq d (Workload.Random_mix.spanning_unites ~rng ~n);
          let root = Seq.find d 0 in
          (* After find 0, node 0 points directly at the root. *)
          check Alcotest.int "direct parent" root (Seq.parent_of d 0));
      case "extra finds never change the partition" (fun () ->
          List.iter
            (fun (linking, compaction) ->
              let n = 40 in
              let d = Seq.create ~linking ~compaction ~seed:2 n in
              let q = Quick_find.create n in
              let rng = Rng.create 13 in
              for _ = 1 to 60 do
                let x = Rng.int rng n and y = Rng.int rng n in
                Seq.unite d x y;
                Quick_find.unite q x y
              done;
              for x = 0 to n - 1 do
                ignore (Seq.find d x)
              done;
              for x = 0 to n - 1 do
                for y = x to n - 1 do
                  check Alcotest.bool "pair" (Quick_find.same_set q x y)
                    (Seq.same_set d x y)
                done
              done)
            all_variants);
      case "by-size trees never link larger under smaller" (fun () ->
          (* Star unions through node 0: the hub set keeps winning, so find 0
             stays O(1) after compaction. *)
          let n = 100 in
          let d = Seq.create ~linking:Seq.By_size ~compaction:Seq.No_compaction n in
          Workload.Op.run_seq d (Workload.Adversarial.star ~n);
          (* Every element is at depth <= 1 from the root under size linking
             of a star construction. *)
          let root = Seq.find d 0 in
          for i = 0 to n - 1 do
            check Alcotest.bool (string_of_int i) true
              (Seq.parent_of d i = root || Seq.parent_of d i = i)
          done);
      case "by-rank forest height is logarithmic" (fun () ->
          let n = 1 lsl 10 in
          let d = Seq.create ~linking:Seq.By_rank ~compaction:Seq.No_compaction n in
          Workload.Op.run_seq d (Workload.Adversarial.double_binary ~n);
          (* Rank linking bounds tree height by lg n even for adversarial
             union orders. *)
          let max_depth = ref 0 in
          for i = 0 to n - 1 do
            let d' = ref 0 and u = ref i in
            while Seq.parent_of d !u <> !u do
              u := Seq.parent_of d !u;
              incr d'
            done;
            max_depth := max !max_depth !d'
          done;
          check Alcotest.bool "height" true (!max_depth <= 10));
      case "splicing requires randomized linking" (fun () ->
          Alcotest.check_raises "size"
            (Invalid_argument "Seq_dsu.create: splicing requires randomized linking")
            (fun () -> ignore (Seq.create ~linking:Seq.By_size ~compaction:Seq.Splicing 4));
          check Alcotest.bool "valid_combination" false
            (Seq.valid_combination Seq.By_rank Seq.Splicing);
          check Alcotest.bool "random ok" true
            (Seq.valid_combination Seq.By_random Seq.Splicing));
      case "splicing priorities increase along parents" (fun () ->
          let n = 128 in
          let d = Seq.create ~linking:Seq.By_random ~compaction:Seq.Splicing ~seed:3 n in
          let rng = Rng.create 19 in
          for _ = 1 to 400 do
            Seq.unite d (Rng.int rng n) (Rng.int rng n)
          done;
          (* Walking up from any node terminates within n hops (acyclic). *)
          for i = 0 to n - 1 do
            let u = ref i and hops = ref 0 in
            while Seq.parent_of d !u <> !u && !hops <= n do
              u := Seq.parent_of d !u;
              incr hops
            done;
            check Alcotest.bool (string_of_int i) true (!hops <= n)
          done);
      case "splicing counts links exactly" (fun () ->
          let n = 60 in
          let d = Seq.create ~linking:Seq.By_random ~compaction:Seq.Splicing ~seed:4 n in
          let rng = Rng.create 23 in
          for _ = 1 to 200 do
            Seq.unite d (Rng.int rng n) (Rng.int rng n)
          done;
          check Alcotest.int "links" (n - Seq.count_sets d) (Seq.counters d).Seq.links);
      case "create validates n" (fun () ->
          Alcotest.check_raises "zero" (Invalid_argument "Seq_dsu.create: n must be >= 1")
            (fun () -> ignore (Seq.create 0)));
      case "out-of-range rejected" (fun () ->
          let d = Seq.create 5 in
          Alcotest.check_raises "oob" (Invalid_argument "Seq_dsu: node out of range")
            (fun () -> ignore (Seq.find d 5)));
    ]

let () =
  Alcotest.run "sequential"
    [ ("quick_find", quick_find_tests); ("seq_dsu", seq_dsu_tests) ]
