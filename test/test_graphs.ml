(* Tests for the graph substrate and the four DSU applications: connected
   components, Kruskal, SCC, percolation. *)

module Graph = Graphs.Graph
module Digraph = Graphs.Digraph
module Generators = Graphs.Generators
module Components = Graphs.Components
module Kruskal = Graphs.Kruskal
module Scc = Graphs.Scc
module Percolation = Graphs.Percolation
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ---------------------------------------------------------------- graph *)

let graph_tests =
  [
    case "create and accessors" (fun () ->
        let g = Graph.create ~n:4 ~edges:[| (0, 1); (1, 2) |] in
        check Alcotest.int "n" 4 (Graph.n g);
        check Alcotest.int "m" 2 (Graph.num_edges g));
    case "edge endpoints validated" (fun () ->
        Alcotest.check_raises "oob"
          (Invalid_argument "Graph.create: edge endpoint out of range") (fun () ->
            ignore (Graph.create ~n:2 ~edges:[| (0, 2) |])));
    case "adjacency is symmetric" (fun () ->
        let g = Graph.create ~n:4 ~edges:[| (0, 1); (1, 2); (0, 3) |] in
        let adj = Graph.adjacency g in
        check Alcotest.(list int) "adj 0" [ 1; 3 ] (List.sort compare (Array.to_list adj.(0)));
        check Alcotest.(list int) "adj 1" [ 0; 2 ] (List.sort compare (Array.to_list adj.(1)));
        check Alcotest.int "degree" 2 (Graph.degree g 0));
    case "self-loop appears once in adjacency" (fun () ->
        let g = Graph.create ~n:2 ~edges:[| (0, 0) |] in
        check Alcotest.int "degree" 1 (Graph.degree g 0));
    case "random weights match edge count" (fun () ->
        let g = Graph.create ~n:3 ~edges:[| (0, 1); (1, 2) |] in
        let w = Graph.with_random_weights ~rng:(Rng.create 1) g in
        check Alcotest.int "weights" 2 (Array.length w.Graph.weights));
  ]

let digraph_tests =
  [
    case "out edges" (fun () ->
        let g = Digraph.create ~n:3 ~edges:[| (0, 1); (0, 2); (1, 2) |] in
        check Alcotest.(list int) "out 0" [ 1; 2 ]
          (List.sort compare (Array.to_list (Digraph.out g 0)));
        check Alcotest.int "m" 3 (Digraph.num_edges g));
    case "edges round trip" (fun () ->
        let edges = [| (0, 1); (2, 0); (1, 1) |] in
        let g = Digraph.create ~n:3 ~edges in
        check Alcotest.int "count" 3 (Array.length (Digraph.edges g)));
  ]

(* ----------------------------------------------------------- generators *)

let generator_tests =
  [
    case "erdos_renyi sizes" (fun () ->
        let g = Generators.erdos_renyi ~rng:(Rng.create 2) ~n:100 ~m:250 () in
        check Alcotest.int "n" 100 (Graph.n g);
        check Alcotest.int "m" 250 (Graph.num_edges g));
    case "random_tree is connected with n-1 edges" (fun () ->
        let g = Generators.random_tree ~rng:(Rng.create 3) ~n:200 in
        check Alcotest.int "m" 199 (Graph.num_edges g);
        check Alcotest.int "one component" 1
          (Components.count (Components.sequential g)));
    case "grid2d edge count" (fun () ->
        (* rows*(cols-1) + cols*(rows-1) *)
        let g = Generators.grid2d ~rows:5 ~cols:7 in
        check Alcotest.int "n" 35 (Graph.n g);
        check Alcotest.int "m" ((5 * 6) + (7 * 4)) (Graph.num_edges g);
        check Alcotest.int "connected" 1 (Components.count (Components.sequential g)));
    case "rmat sizes" (fun () ->
        let g = Generators.rmat ~rng:(Rng.create 4) ~scale:8 ~edge_factor:4 () in
        check Alcotest.int "n" 256 (Graph.n g);
        check Alcotest.int "m" 1024 (Graph.num_edges g));
    case "rmat validates probabilities" (fun () ->
        Alcotest.check_raises "bad"
          (Invalid_argument "Generators.rmat: a + b + c must be < 1") (fun () ->
            ignore (Generators.rmat ~rng:(Rng.create 1) ~scale:4 ~edge_factor:2 ~a:0.5 ~b:0.3 ~c:0.3 ())));
    case "preferential attachment is connected" (fun () ->
        let g = Generators.preferential ~rng:(Rng.create 5) ~n:150 ~deg:2 in
        check Alcotest.int "one component" 1
          (Components.count (Components.sequential g)));
    case "clustered_digraph has exactly clusters SCCs" (fun () ->
        let g =
          Generators.clustered_digraph ~rng:(Rng.create 6) ~clusters:7
            ~cluster_size:5 ~extra:30
        in
        check Alcotest.int "n" 35 (Digraph.n g);
        check Alcotest.int "sccs" 7 (Scc.count (Scc.tarjan g)));
  ]

(* ----------------------------------------------------------- components *)

let component_tests =
  [
    case "sequential labels on a known graph" (fun () ->
        let g = Graph.create ~n:6 ~edges:[| (0, 1); (1, 2); (4, 5) |] in
        let labels = Components.sequential g in
        check Alcotest.(array int) "labels" [| 0; 0; 0; 3; 4; 4 |] labels;
        check Alcotest.int "count" 3 (Components.count labels));
    case "concurrent equals sequential" (fun () ->
        List.iter
          (fun (n, m) ->
            let g = Generators.erdos_renyi ~rng:(Rng.create (n + m)) ~n ~m () in
            let s = Components.sequential g in
            let c = Components.concurrent ~domains:3 ~seed:9 g in
            check Alcotest.(array int) (Printf.sprintf "n=%d m=%d" n m) s c)
          [ (50, 20); (100, 100); (500, 1200) ]);
    case "incremental connectivity" (fun () ->
        let add_edge, connected = Components.incremental ~seed:4 ~n:10 () in
        check Alcotest.bool "initially apart" false (connected 0 9);
        add_edge 0 5;
        add_edge 5 9;
        check Alcotest.bool "now connected" true (connected 0 9);
        check Alcotest.bool "others apart" false (connected 1 2));
    case "normalize maps to smallest member" (fun () ->
        let labels = [| 2; 2; 2; 5; 5 |] in
        check Alcotest.(array int) "normalized" [| 0; 0; 0; 3; 3 |]
          (Components.normalize labels));
    case "normalize is idempotent" (fun () ->
        let labels = Components.normalize [| 1; 1; 4; 4; 4 |] in
        check Alcotest.(array int) "fixpoint" labels (Components.normalize labels));
  ]

(* -------------------------------------------------------------- kruskal *)

let kruskal_tests =
  [
    case "hand-checked MST" (fun () ->
        (* Square 0-1-2-3 with diagonal: MST must take the three cheapest
           non-cyclic edges: 0-1 (1), 1-2 (2), 2-3 (1). *)
        let g = Graph.create ~n:4 ~edges:[| (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) |] in
        let w = { Graph.graph = g; weights = [| 1.; 2.; 1.; 4.; 5. |] } in
        let r = Kruskal.run w in
        check (Alcotest.float 1e-9) "weight" 4. r.Kruskal.total_weight;
        check Alcotest.int "edges" 3 (List.length r.Kruskal.edges);
        check Alcotest.int "one tree" 1 r.Kruskal.components);
    case "forest on disconnected graph" (fun () ->
        let g = Graph.create ~n:4 ~edges:[| (0, 1); (2, 3) |] in
        let w = { Graph.graph = g; weights = [| 1.; 2. |] } in
        let r = Kruskal.run w in
        check Alcotest.int "components" 2 r.Kruskal.components;
        check Alcotest.int "edges" 2 (List.length r.Kruskal.edges));
    case "concurrent DSU gives the same weight" (fun () ->
        let rng = Rng.create 11 in
        let g = Generators.erdos_renyi ~rng ~n:300 ~m:900 () in
        let w = Graph.with_random_weights ~rng g in
        let seq = Kruskal.run w in
        let conc = Kruskal.run_concurrent_dsu ~seed:13 w in
        check (Alcotest.float 1e-9) "weights equal" seq.Kruskal.total_weight
          conc.Kruskal.total_weight;
        check Alcotest.int "components equal" seq.Kruskal.components
          conc.Kruskal.components);
    case "spanning tree of connected graph has n-1 edges" (fun () ->
        let rng = Rng.create 12 in
        let g = Generators.random_tree ~rng ~n:100 in
        let w = Graph.with_random_weights ~rng g in
        let r = Kruskal.run w in
        check Alcotest.int "edges" 99 (List.length r.Kruskal.edges));
    case "accepted edges come out sorted by weight" (fun () ->
        let rng = Rng.create 14 in
        let g = Generators.erdos_renyi ~rng ~n:50 ~m:200 () in
        let w = Graph.with_random_weights ~rng g in
        let r = Kruskal.run w in
        let weights = List.map (fun (_, _, x) -> x) r.Kruskal.edges in
        let sorted = List.sort compare weights in
        check Alcotest.(list (float 1e-9)) "sorted" sorted weights);
  ]

(* ------------------------------------------------------------------ scc *)

(* Brute-force SCC oracle via reachability (for small n). *)
let scc_oracle g =
  let n = Digraph.n g in
  let reach = Array.make_matrix n n false in
  for u = 0 to n - 1 do
    reach.(u).(u) <- true
  done;
  Array.iter (fun (u, v) -> reach.(u).(v) <- true) (Digraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
      done
    done
  done;
  let labels = Array.make n (-1) in
  for v = 0 to n - 1 do
    let rec first u = if reach.(v).(u) && reach.(u).(v) then u else first (u + 1) in
    labels.(v) <- first 0
  done;
  labels

let scc_tests =
  [
    case "single cycle is one SCC" (fun () ->
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (1, 2); (2, 3); (3, 0) |] in
        check Alcotest.int "count" 1 (Scc.count (Scc.tarjan g)));
    case "dag has n SCCs" (fun () ->
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (1, 2); (1, 3) |] in
        check Alcotest.int "count" 4 (Scc.count (Scc.tarjan g)));
    case "two cycles joined by one arc" (fun () ->
        let g =
          Digraph.create ~n:6
            ~edges:[| (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) |]
        in
        let labels = Scc.tarjan g in
        check Alcotest.int "count" 2 (Scc.count labels);
        check Alcotest.int "first scc" labels.(0) labels.(2);
        check Alcotest.bool "different" true (labels.(0) <> labels.(3)));
    case "self loops" (fun () ->
        let g = Digraph.create ~n:3 ~edges:[| (0, 0); (1, 2) |] in
        check Alcotest.int "count" 3 (Scc.count (Scc.tarjan g)));
    case "matches brute-force oracle on random digraphs" (fun () ->
        for trial = 1 to 15 do
          let rng = Rng.create (trial * 7) in
          let n = 8 + Rng.int rng 12 in
          let m = Rng.int rng (3 * n) in
          let g = Generators.random_digraph ~rng ~n ~m in
          check Alcotest.(array int)
            (Printf.sprintf "trial %d" trial)
            (scc_oracle g) (Scc.tarjan g)
        done);
    case "deep path does not overflow (iterative)" (fun () ->
        let n = 200_000 in
        let edges = Array.init (n - 1) (fun i -> (i, i + 1)) in
        let g = Digraph.create ~n ~edges in
        check Alcotest.int "count" n (Scc.count (Scc.tarjan g)));
    case "condensation quotient is acyclic" (fun () ->
        let g =
          Generators.clustered_digraph ~rng:(Rng.create 15) ~clusters:6
            ~cluster_size:4 ~extra:20
        in
        let c = Scc.condense_with_dsu ~seed:3 g in
        check Alcotest.int "sccs" 6 (Scc.count c.Scc.labels);
        check Alcotest.int "quotient vertices" 6 (Digraph.n c.Scc.quotient);
        (* Acyclic quotient: every SCC of the quotient is a singleton. *)
        check Alcotest.int "quotient acyclic" 6 (Scc.count (Scc.tarjan c.Scc.quotient)));
    case "condensation scc_of_vertex consistent with labels" (fun () ->
        let g = Generators.random_digraph ~rng:(Rng.create 16) ~n:30 ~m:60 in
        let c = Scc.condense_with_dsu ~seed:4 g in
        for u = 0 to 29 do
          for v = 0 to 29 do
            check Alcotest.bool "consistent" true
              (c.Scc.labels.(u) = c.Scc.labels.(v)
               = (c.Scc.scc_of_vertex.(u) = c.Scc.scc_of_vertex.(v)))
          done
        done);
  ]

(* ----------------------------------------------------------- percolation *)

let percolation_tests =
  [
    case "fresh grid does not percolate" (fun () ->
        let p = Percolation.create ~seed:1 5 in
        check Alcotest.bool "closed" false (Percolation.percolates p);
        check Alcotest.int "open" 0 (Percolation.open_count p));
    case "full column percolates" (fun () ->
        let p = Percolation.create ~seed:2 5 in
        for r = 0 to 4 do
          Percolation.open_site p ~row:r ~col:2
        done;
        check Alcotest.bool "percolates" true (Percolation.percolates p);
        check Alcotest.bool "full bottom" true (Percolation.full p ~row:4 ~col:2));
    case "blocked row prevents percolation" (fun () ->
        let p = Percolation.create ~seed:3 4 in
        (* Open everything except row 2. *)
        for r = 0 to 3 do
          for c = 0 to 3 do
            if r <> 2 then Percolation.open_site p ~row:r ~col:c
          done
        done;
        check Alcotest.bool "blocked" false (Percolation.percolates p));
    case "open_site is idempotent" (fun () ->
        let p = Percolation.create ~seed:4 3 in
        Percolation.open_site p ~row:1 ~col:1;
        Percolation.open_site p ~row:1 ~col:1;
        check Alcotest.int "count" 1 (Percolation.open_count p);
        check Alcotest.bool "is_open" true (Percolation.is_open p ~row:1 ~col:1));
    case "1x1 grid percolates after one site" (fun () ->
        let p = Percolation.create ~seed:5 1 in
        Percolation.open_site p ~row:0 ~col:0;
        check Alcotest.bool "percolates" true (Percolation.percolates p));
    case "full requires an open path from the top" (fun () ->
        let p = Percolation.create ~seed:6 3 in
        Percolation.open_site p ~row:2 ~col:0;
        check Alcotest.bool "isolated bottom not full" false
          (Percolation.full p ~row:2 ~col:0));
    case "simulate returns a fraction in (0, 1]" (fun () ->
        let f = Percolation.simulate ~rng:(Rng.create 7) 16 in
        check Alcotest.bool "range" true (f > 0. && f <= 1.));
    case "threshold estimate is near 0.59" (fun () ->
        let s = Percolation.threshold_estimate ~rng:(Rng.create 8) ~size:24 ~trials:12 in
        check Alcotest.bool "plausible" true
          (s.Repro_util.Stats.mean > 0.45 && s.Repro_util.Stats.mean < 0.75));
    case "site out of range rejected" (fun () ->
        let p = Percolation.create ~seed:9 3 in
        Alcotest.check_raises "oob" (Invalid_argument "Percolation: site out of range")
          (fun () -> Percolation.open_site p ~row:3 ~col:0));
  ]

(* Independent minimum-spanning-forest verification via the cycle property:
   a forest F of G is minimum iff for every non-forest edge (u, v, w), w is
   >= the maximum weight on F's u-v path (ties by edge identity ignored:
   weights here are floats from a continuous distribution). *)
let verify_msf (w : Graph.weighted) (forest : (int * int * float) list) =
  let n = Graph.n w.Graph.graph in
  (* Build forest adjacency. *)
  let adj = Array.make n [] in
  List.iter
    (fun (u, v, wt) ->
      adj.(u) <- (v, wt) :: adj.(u);
      adj.(v) <- (u, wt) :: adj.(v))
    forest;
  (* Max edge weight on the forest path u -> v, or None if disconnected. *)
  let max_on_path u v =
    let seen = Array.make n false in
    let rec dfs x best =
      if x = v then Some best
      else begin
        seen.(x) <- true;
        List.fold_left
          (fun acc (y, wt) ->
            match acc with
            | Some _ -> acc
            | None -> if seen.(y) then None else dfs y (max best wt))
          None adj.(x)
      end
    in
    dfs u neg_infinity
  in
  Array.iteri
    (fun i (u, v) ->
      let wt = w.Graph.weights.(i) in
      if u <> v then
        match max_on_path u v with
        | None -> Alcotest.failf "edge (%d,%d) spans two forest trees" u v
        | Some best ->
          if wt +. 1e-12 < best then
            Alcotest.failf "cycle property violated at edge (%d,%d): %f < %f" u v wt
              best)
    (Graph.edges w.Graph.graph)

(* ------------------------------------------------------------ connectit *)

let connectit_tests =
  [
    case "direct strategy equals sequential labels" (fun () ->
        let g = Generators.erdos_renyi ~rng:(Rng.create 41) ~n:500 ~m:1200 () in
        let labels, stats =
          Graphs.Connectit.components ~domains:3 ~strategy:Graphs.Connectit.Direct g
        in
        check Alcotest.(array int) "labels" (Components.sequential g) labels;
        check Alcotest.int "nothing skipped" 0 stats.Graphs.Connectit.edges_skipped);
    case "sampled strategy equals sequential labels" (fun () ->
        List.iter
          (fun (n, m, k) ->
            let g = Generators.erdos_renyi ~rng:(Rng.create (n + m + k)) ~n ~m () in
            let labels, _ =
              Graphs.Connectit.components ~domains:3
                ~strategy:(Graphs.Connectit.Sampled k) g
            in
            check Alcotest.(array int) (Printf.sprintf "n=%d m=%d k=%d" n m k)
              (Components.sequential g) labels)
          [ (200, 100, 1); (500, 2000, 2); (1000, 4000, 3); (300, 300, 2) ]);
    case "sampling skips edges on dense graphs" (fun () ->
        let g = Generators.erdos_renyi ~rng:(Rng.create 43) ~n:2000 ~m:16_000 () in
        let _, stats =
          Graphs.Connectit.components ~strategy:(Graphs.Connectit.Sampled 2) g
        in
        check Alcotest.bool "most skipped" true
          (stats.Graphs.Connectit.edges_skipped > stats.Graphs.Connectit.edges_total / 2);
        check Alcotest.bool "sampling counted" true
          (stats.Graphs.Connectit.sample_unites > 0));
    case "k = 0 sampling degenerates to direct" (fun () ->
        let g = Generators.erdos_renyi ~rng:(Rng.create 47) ~n:300 ~m:600 () in
        let labels, _ =
          Graphs.Connectit.components ~strategy:(Graphs.Connectit.Sampled 0) g
        in
        check Alcotest.(array int) "labels" (Components.sequential g) labels);
    case "disconnected graph keeps its components" (fun () ->
        (* Two cliques, no giant dominance issues. *)
        let edges = ref [] in
        for i = 0 to 19 do
          for j = i + 1 to 19 do
            edges := (i, j) :: (20 + i, 20 + j) :: !edges
          done
        done;
        let g = Graph.create ~n:40 ~edges:(Array.of_list !edges) in
        let labels, _ =
          Graphs.Connectit.components ~strategy:(Graphs.Connectit.Sampled 2) g
        in
        check Alcotest.int "two components" 2 (Components.count labels));
    case "single domain works" (fun () ->
        let g = Generators.random_tree ~rng:(Rng.create 53) ~n:400 in
        let labels, _ = Graphs.Connectit.components ~domains:1 g in
        check Alcotest.int "one component" 1 (Components.count labels));
  ]

(* -------------------------------------------------------------- boruvka *)

let boruvka_tests =
  [
    case "cycle property certifies both MSF algorithms" (fun () ->
        let rng = Rng.create 59 in
        for trial = 1 to 5 do
          let n = 40 + Rng.int rng 80 in
          let m = n + Rng.int rng (2 * n) in
          let g = Generators.erdos_renyi ~rng ~n ~m () in
          let w = Graph.with_random_weights ~rng g in
          ignore trial;
          verify_msf w (Kruskal.run w).Kruskal.edges;
          verify_msf w (Graphs.Boruvka.run w).Graphs.Boruvka.edges
        done);
    case "matches kruskal's weight on random graphs" (fun () ->
        let rng = Rng.create 19 in
        for trial = 1 to 8 do
          let n = 50 + Rng.int rng 200 in
          let m = n + Rng.int rng (3 * n) in
          let g = Generators.erdos_renyi ~rng ~n ~m () in
          let w = Graph.with_random_weights ~rng g in
          let k = Kruskal.run w in
          let b = Graphs.Boruvka.run w in
          check (Alcotest.float 1e-9)
            (Printf.sprintf "weight %d" trial)
            k.Kruskal.total_weight b.Graphs.Boruvka.total_weight;
          check Alcotest.int "components" k.Kruskal.components
            b.Graphs.Boruvka.components
        done);
    case "parallel matches sequential" (fun () ->
        let rng = Rng.create 23 in
        let g = Generators.erdos_renyi ~rng ~n:2_000 ~m:8_000 () in
        let w = Graph.with_random_weights ~rng g in
        let seq = Graphs.Boruvka.run w in
        let par = Graphs.Boruvka.run_parallel ~domains:4 w in
        check (Alcotest.float 1e-9) "weight" seq.Graphs.Boruvka.total_weight
          par.Graphs.Boruvka.total_weight;
        check Alcotest.int "components" seq.Graphs.Boruvka.components
          par.Graphs.Boruvka.components);
    case "logarithmically many rounds" (fun () ->
        let rng = Rng.create 29 in
        let g = Generators.random_tree ~rng ~n:1024 in
        let w = Graph.with_random_weights ~rng g in
        let b = Graphs.Boruvka.run w in
        check Alcotest.bool "rounds <= lg n" true (b.Graphs.Boruvka.rounds <= 10);
        check Alcotest.int "spanning" 1 b.Graphs.Boruvka.components;
        check Alcotest.int "edges" 1023 (List.length b.Graphs.Boruvka.edges));
    case "forest output is acyclic (edge count check)" (fun () ->
        let rng = Rng.create 31 in
        let g = Generators.erdos_renyi ~rng ~n:300 ~m:900 () in
        let w = Graph.with_random_weights ~rng g in
        let b = Graphs.Boruvka.run_parallel ~domains:3 w in
        check Alcotest.int "edges = n - components"
          (300 - b.Graphs.Boruvka.components)
          (List.length b.Graphs.Boruvka.edges));
    case "empty graph" (fun () ->
        let g = Graph.create ~n:5 ~edges:[||] in
        let w = { Graph.graph = g; weights = [||] } in
        let b = Graphs.Boruvka.run w in
        check Alcotest.int "components" 5 b.Graphs.Boruvka.components;
        check Alcotest.int "rounds" 0 b.Graphs.Boruvka.rounds);
  ]

(* ------------------------------------------------------------------ lca *)

let lca_tests =
  [
    case "hand-built tree" (fun () ->
        (*       0
                / \
               1   2
              / \   \
             3   4   5      *)
        let t = Graphs.Lca.tree_of_parents ~root:0 [| 0; 0; 0; 1; 1; 2 |] in
        check Alcotest.(list int) "queries"
          [ 1; 0; 0; 1; 5; 3 ]
          (Graphs.Lca.solve t [ (3, 4); (3, 5); (1, 2); (4, 1); (5, 5); (3, 3) ]));
    case "depth and parent accessors" (fun () ->
        let t = Graphs.Lca.tree_of_parents ~root:0 [| 0; 0; 1; 2 |] in
        check Alcotest.int "depth leaf" 3 (Graphs.Lca.depth t 3);
        check Alcotest.int "parent" 2 (Graphs.Lca.parent t 3);
        check Alcotest.int "root" 0 (Graphs.Lca.root t);
        check Alcotest.int "n" 4 (Graphs.Lca.n t));
    case "root is the lca of distant leaves" (fun () ->
        let t = Graphs.Lca.tree_of_parents ~root:0 [| 0; 0; 0 |] in
        check Alcotest.(list int) "q" [ 0 ] (Graphs.Lca.solve t [ (1, 2) ]));
    case "matches the naive walk on random trees" (fun () ->
        let rng = Rng.create 8 in
        for trial = 1 to 10 do
          let n = 20 + Rng.int rng 200 in
          let t = Graphs.Lca.random_tree ~rng ~n in
          let queries =
            List.init 50 (fun _ -> (Rng.int rng n, Rng.int rng n))
          in
          let expected = List.map (fun (u, v) -> Graphs.Lca.lca_naive t u v) queries in
          check Alcotest.(list int)
            (Printf.sprintf "trial %d" trial)
            expected (Graphs.Lca.solve t queries)
        done);
    case "validates malformed parents" (fun () ->
        Alcotest.check_raises "root" (Invalid_argument "Lca.tree_of_parents: root must be its own parent")
          (fun () -> ignore (Graphs.Lca.tree_of_parents ~root:0 [| 1; 0 |]));
        Alcotest.check_raises "cycle" (Invalid_argument "Lca.tree_of_parents: cycle detected")
          (fun () -> ignore (Graphs.Lca.tree_of_parents ~root:0 [| 0; 2; 1 |])));
    case "query out of range rejected" (fun () ->
        let t = Graphs.Lca.tree_of_parents ~root:0 [| 0; 0 |] in
        Alcotest.check_raises "oob" (Invalid_argument "Lca.solve: query vertex out of range")
          (fun () -> ignore (Graphs.Lca.solve t [ (0, 5) ])));
  ]

(* ----------------------------------------------------------- dominators *)

(* Exact reference by definition: a dominates b iff removing a makes b
   unreachable from the root (and every vertex dominates itself). *)
let brute_idom g ~root =
  let n = Graphs.Digraph.n g in
  let reachable_without blocked =
    let seen = Array.make n false in
    let queue = Queue.create () in
    if root <> blocked then begin
      seen.(root) <- true;
      Queue.push root queue
    end;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun w ->
          if w <> blocked && not seen.(w) then begin
            seen.(w) <- true;
            Queue.push w queue
          end)
        (Graphs.Digraph.out g v)
    done;
    seen
  in
  let reach = reachable_without (-1) in
  let dominators = Array.make n [] in
  for a = 0 to n - 1 do
    let without = reachable_without a in
    for b = 0 to n - 1 do
      if reach.(b) && (a = b || (reach.(a) && not without.(b))) then
        dominators.(b) <- a :: dominators.(b)
    done
  done;
  (* idom(b) = the dominator of b (other than b) dominated by all other
     non-b dominators = the one with the largest dominator set. *)
  Array.init n (fun b ->
      if not reach.(b) then -1
      else if b = root then root
      else begin
        let strict = List.filter (fun a -> a <> b) dominators.(b) in
        let is_dominated_by_all a =
          List.for_all (fun c -> List.mem c dominators.(a)) strict
        in
        match List.filter is_dominated_by_all strict with
        | [ idom ] -> idom
        | _ -> failwith "brute_idom: ambiguous"
      end)

let dominator_tests =
  [
    case "diamond flow graph" (fun () ->
        (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: idom(3) = 0. *)
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (0, 2); (1, 3); (2, 3) |] in
        let idom = Graphs.Dominators.lengauer_tarjan g ~root:0 in
        check Alcotest.(array int) "idoms" [| 0; 0; 0; 0 |] idom);
    case "chain flow graph" (fun () ->
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (1, 2); (2, 3) |] in
        let idom = Graphs.Dominators.lengauer_tarjan g ~root:0 in
        check Alcotest.(array int) "idoms" [| 0; 0; 1; 2 |] idom);
    case "loop with exit" (fun () ->
        (* 0 -> 1 -> 2 -> 1 (back edge), 2 -> 3. *)
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (1, 2); (2, 1); (2, 3) |] in
        let idom = Graphs.Dominators.lengauer_tarjan g ~root:0 in
        check Alcotest.(array int) "idoms" [| 0; 0; 1; 2 |] idom);
    case "unreachable vertices get -1" (fun () ->
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (2, 3) |] in
        let idom = Graphs.Dominators.lengauer_tarjan g ~root:0 in
        check Alcotest.int "v2" (-1) idom.(2);
        check Alcotest.int "v3" (-1) idom.(3));
    case "lengauer-tarjan = iterative = brute force on random graphs" (fun () ->
        let rng = Rng.create 91 in
        for trial = 1 to 25 do
          let n = 5 + Rng.int rng 20 in
          let m = Rng.int rng (3 * n) in
          let g = Generators.random_digraph ~rng ~n ~m in
          let lt = Graphs.Dominators.lengauer_tarjan g ~root:0 in
          let it = Graphs.Dominators.iterative g ~root:0 in
          let bf = brute_idom g ~root:0 in
          check Alcotest.(array int) (Printf.sprintf "lt=it %d" trial) it lt;
          check Alcotest.(array int) (Printf.sprintf "lt=bf %d" trial) bf lt
        done);
    case "agreement on larger structured graphs" (fun () ->
        let rng = Rng.create 17 in
        for trial = 1 to 5 do
          let n = 300 + Rng.int rng 300 in
          let m = 2 * n in
          let g = Generators.random_digraph ~rng ~n ~m in
          let lt = Graphs.Dominators.lengauer_tarjan g ~root:0 in
          let it = Graphs.Dominators.iterative g ~root:0 in
          check Alcotest.(array int) (Printf.sprintf "trial %d" trial) it lt
        done);
    case "dominates walks the tree" (fun () ->
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (1, 2); (2, 3) |] in
        let idom = Graphs.Dominators.lengauer_tarjan g ~root:0 in
        check Alcotest.bool "0 dom 3" true (Graphs.Dominators.dominates idom ~root:0 0 3);
        check Alcotest.bool "1 dom 3" true (Graphs.Dominators.dominates idom ~root:0 1 3);
        check Alcotest.bool "3 !dom 1" false (Graphs.Dominators.dominates idom ~root:0 3 1));
    case "dominator tree children" (fun () ->
        let g = Digraph.create ~n:4 ~edges:[| (0, 1); (0, 2); (1, 3); (2, 3) |] in
        let idom = Graphs.Dominators.lengauer_tarjan g ~root:0 in
        let children = Graphs.Dominators.dominator_tree_children idom in
        check Alcotest.(list int) "root children" [ 1; 2; 3 ]
          (List.sort compare (Array.to_list children.(0))));
  ]

let () =
  Alcotest.run "graphs"
    [
      ("graph", graph_tests);
      ("digraph", digraph_tests);
      ("generators", generator_tests);
      ("components", component_tests);
      ("kruskal", kruskal_tests);
      ("scc", scc_tests);
      ("percolation", percolation_tests);
      ("connectit", connectit_tests);
      ("boruvka", boruvka_tests);
      ("lca", lca_tests);
      ("dominators", dominator_tests);
    ]
