(* Tests for the streaming-connectivity pipeline: edge streams, the
   ConnectIt-style sample+finish driver, the deterministic bulk engine
   (with its lincheck-style determinism check and a racy-mode
   counterexample), the plan-dispatched Dsu.Driver, batch find kernels,
   the Patrascu-Thorup adversarial workload, and the dsu-connectivity/v1
   harness (guard + perfdiff round trip). *)

module Graph = Graphs.Graph
module Generators = Graphs.Generators
module Components = Graphs.Components
module Edge_stream = Graphs.Edge_stream
module Connectit = Graphs.Connectit
module Det_bulk = Graphs.Det_bulk
module Determinism = Lincheck.Determinism
module Connectivity = Harness.Connectivity
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* Small streams, one per generator kind, sized so every test stays
   quick but still crosses several chunks. *)
let small_streams ?(simple = false) ?(seed = 7) () =
  [
    Edge_stream.erdos_renyi ~simple ~chunk_size:256 ~seed ~n:600 ~m:2000 ();
    Edge_stream.rmat ~simple ~chunk_size:256 ~seed ~scale:9 ~edge_factor:4 ();
    Edge_stream.power_law ~simple ~chunk_size:256 ~seed ~n:600 ~m:2000 ();
  ]

let stream_edges stream =
  let acc = ref [] in
  Edge_stream.iter stream (fun u v -> acc := (u, v) :: !acc);
  Array.of_list (List.rev !acc)

(* ------------------------------------------------------------ streams *)

let edge_stream_tests =
  [
    case "geometry and accessors" (fun () ->
        let s =
          Edge_stream.erdos_renyi ~chunk_size:256 ~seed:1 ~n:500 ~m:1000 ()
        in
        check Alcotest.int "n" 500 (Edge_stream.n s);
        check Alcotest.int "m" 1000 (Edge_stream.total_edges s);
        check Alcotest.int "chunks" 4 (Edge_stream.chunk_count s);
        check Alcotest.string "kind" "erdos-renyi" (Edge_stream.kind_name s);
        let last = Edge_stream.make_chunk s in
        Edge_stream.fill s 3 last;
        check Alcotest.int "last chunk len" 232 last.Edge_stream.len);
    case "iter matches materialize (twin oracle)" (fun () ->
        List.iter
          (fun s ->
            let streamed = stream_edges s in
            let g = Edge_stream.materialize s in
            check Alcotest.int "edge count"
              (Edge_stream.total_edges s)
              (Array.length streamed);
            Array.iteri
              (fun i (u, v) ->
                let u', v' = (Graph.edges g).(i) in
                if u <> u' || v <> v' then
                  Alcotest.failf "%s edge %d: (%d,%d) vs (%d,%d)"
                    (Edge_stream.kind_name s) i u v u' v')
              streamed)
          (small_streams ()));
    case "fill is chunk-order independent" (fun () ->
        List.iter
          (fun s ->
            let ordered = stream_edges s in
            let buf = Edge_stream.make_chunk s in
            let pos = ref 0 in
            (* Regenerate chunks in reverse order; each must reproduce
               exactly the slice the in-order scan produced. *)
            for idx = Edge_stream.chunk_count s - 1 downto 0 do
              Edge_stream.fill s idx buf;
              let base = idx * Edge_stream.chunk_size s in
              for k = 0 to buf.Edge_stream.len - 1 do
                let u, v = ordered.(base + k) in
                if
                  buf.Edge_stream.src.(k) <> u || buf.Edge_stream.dst.(k) <> v
                then
                  Alcotest.failf "%s chunk %d offset %d differs"
                    (Edge_stream.kind_name s) idx k;
                incr pos
              done
            done;
            check Alcotest.int "total regenerated"
              (Array.length ordered) !pos)
          (small_streams ()));
    case "simple streams reject self-loops" (fun () ->
        List.iter
          (fun s ->
            Edge_stream.iter s (fun u v ->
                if u = v then
                  Alcotest.failf "%s: self-loop %d" (Edge_stream.kind_name s) u))
          (small_streams ~simple:true ()));
    case "endpoints stay in range" (fun () ->
        List.iter
          (fun s ->
            let n = Edge_stream.n s in
            Edge_stream.iter s (fun u v ->
                if u < 0 || u >= n || v < 0 || v >= n then
                  Alcotest.failf "%s: (%d,%d) outside [0,%d)"
                    (Edge_stream.kind_name s) u v n))
          (small_streams ()));
    case "parameter validation" (fun () ->
        expect_invalid "scale" (fun () ->
            Edge_stream.rmat ~seed:1 ~scale:41 ~edge_factor:4 ());
        expect_invalid "probabilities" (fun () ->
            Edge_stream.rmat ~seed:1 ~a:0.6 ~b:0.3 ~c:0.3 ~scale:4
              ~edge_factor:2 ());
        let s = Edge_stream.erdos_renyi ~seed:1 ~n:10 ~m:10 () in
        expect_invalid "chunk index" (fun () ->
            Edge_stream.fill s 7 (Edge_stream.make_chunk s)));
  ]

(* --------------------------------------------------- generator hygiene *)

let generator_hygiene_tests =
  [
    case "erdos_renyi ~simple dedups and drops loops" (fun () ->
        let g =
          Generators.erdos_renyi ~simple:true ~rng:(Rng.create 5) ~n:30 ~m:200
            ()
        in
        let seen = Hashtbl.create 256 in
        Array.iter
          (fun (u, v) ->
            if u = v then Alcotest.failf "self-loop %d" u;
            let key = (min u v, max u v) in
            if Hashtbl.mem seen key then
              Alcotest.failf "duplicate edge (%d,%d)" u v;
            Hashtbl.add seen key ())
          (Graph.edges g);
        check Alcotest.int "m" 200 (Graph.num_edges g));
    case "erdos_renyi ~simple rejects impossible m" (fun () ->
        expect_invalid "m too large" (fun () ->
            Generators.erdos_renyi ~simple:true ~rng:(Rng.create 1) ~n:5 ~m:11
              ()));
    case "rmat ~simple drops loops" (fun () ->
        let g =
          Generators.rmat ~simple:true ~rng:(Rng.create 6) ~scale:7
            ~edge_factor:8 ()
        in
        Array.iter
          (fun (u, v) -> if u = v then Alcotest.failf "self-loop %d" u)
          (Graph.edges g));
  ]

(* ------------------------------------------------- streamed pipeline *)

let oracle_labels stream = Components.sequential (Edge_stream.materialize stream)

let pipeline_tests =
  let check_stream ?(domains = 2) ?plan ?sampling ?finish ?mode name stream =
    let expected = oracle_labels stream in
    let r = Connectit.run_stream ~domains ?plan ?sampling ?finish ?mode stream in
    if r.Connectit.labels <> expected then Alcotest.failf "%s: labels differ" name;
    check Alcotest.int (name ^ " components")
      (Components.count expected)
      r.Connectit.components;
    check Alcotest.int (name ^ " edges_total")
      (Edge_stream.total_edges stream)
      r.Connectit.edges_total
  in
  [
    case "labels match sequential oracle on every generator" (fun () ->
        List.iter
          (fun s -> check_stream (Edge_stream.kind_name s) s)
          (small_streams ()));
    case "sampling x finish grid matches oracle" (fun () ->
        let s =
          Edge_stream.rmat ~chunk_size:256 ~seed:11 ~scale:9 ~edge_factor:4 ()
        in
        List.iter
          (fun sampling ->
            List.iter
              (fun finish ->
                check_stream
                  (Printf.sprintf "%s/%s"
                     (Connectit.sampling_to_string sampling)
                     (Connectit.finish_to_string finish))
                  ~sampling ~finish s)
              [ Connectit.Per_op; Connectit.Bulk ])
          [ Connectit.No_sampling; Connectit.K_out 2; Connectit.Bfs_hubs 8 ]);
    case "deterministic mode matches oracle" (fun () ->
        List.iter
          (fun s ->
            check_stream
              ("det " ^ Edge_stream.kind_name s)
              ~mode:Connectit.Deterministic s)
          (small_streams ~seed:13 ()));
    case "alternate plans match oracle" (fun () ->
        let s =
          Edge_stream.erdos_renyi ~chunk_size:256 ~seed:17 ~n:400 ~m:1200 ()
        in
        let packed =
          { Dsu.Plan.default with linking = Dsu.Plan.By_rank; layout = Dsu.Plan.Packed }
        in
        let boxed =
          {
            Dsu.Plan.default with
            layout = Dsu.Plan.Boxed;
            memory_order = Dsu.Memory_order.Seq_cst;
          }
        in
        check_stream "packed plan" ~plan:packed s;
        check_stream "boxed plan" ~plan:boxed s);
    case "sampling skips edges but keeps answers" (fun () ->
        (* A dense-ish ER graph has a giant component, so k-out sampling
           must actually skip a decent share of finish-phase edges. *)
        let s =
          Edge_stream.erdos_renyi ~chunk_size:256 ~seed:19 ~n:500 ~m:4000 ()
        in
        let r = Connectit.run_stream ~domains:2 ~sampling:(Connectit.K_out 2) s in
        check Alcotest.bool "skipped some" true (r.Connectit.edges_skipped > 0);
        if r.Connectit.labels <> oracle_labels s then
          Alcotest.fail "sampled labels differ from oracle");
    case "string round trips" (fun () ->
        List.iter
          (fun v ->
            check
              Alcotest.(option string)
              "sampling"
              (Some (Connectit.sampling_to_string v))
              (Option.map Connectit.sampling_to_string
                 (Connectit.sampling_of_string (Connectit.sampling_to_string v))))
          [ Connectit.No_sampling; Connectit.K_out 3; Connectit.Bfs_hubs 5 ];
        check Alcotest.bool "finish" true
          (Connectit.finish_of_string "bulk" = Some Connectit.Bulk);
        check Alcotest.bool "mode" true
          (Connectit.mode_of_string "det" = Some Connectit.Deterministic));
    case "components accepts a plan (old signature intact)" (fun () ->
        let g =
          Generators.erdos_renyi ~rng:(Rng.create 23) ~n:300 ~m:900 ()
        in
        let expected = Components.sequential g in
        let labels, stats = Connectit.components ~domains:2 g in
        check Alcotest.bool "default labels" true (labels = expected);
        check Alcotest.bool "dsu_work collected" true
          (stats.Connectit.dsu_work > 0);
        let packed =
          { Dsu.Plan.default with linking = Dsu.Plan.By_rank; layout = Dsu.Plan.Packed }
        in
        let labels', stats' =
          Connectit.components ~domains:2 ~plan:packed ~collect_stats:false g
        in
        check Alcotest.bool "packed labels" true (labels' = expected);
        check Alcotest.int "stats off" 0 stats'.Connectit.dsu_work);
  ]

(* --------------------------------------------------------- determinism *)

let determinism_tests =
  [
    case "det engine: one digest across domains x perturbations" (fun () ->
        let s =
          Edge_stream.rmat ~chunk_size:256 ~seed:29 ~scale:9 ~edge_factor:4 ()
        in
        let out =
          Determinism.check ~domain_counts:[ 1; 2; 4 ]
            ~perturb_seeds:[ 0; 1; 2 ]
            ~run:(fun ~domains ~on_round ->
              let labels, _ = Det_bulk.run ~domains ~on_round s in
              labels)
            ()
        in
        check Alcotest.int "runs" 9 out.Determinism.runs;
        if not out.Determinism.ok then
          Alcotest.failf "determinism violated:\n%s"
            (String.concat "\n" out.Determinism.failures));
    case "det run_stream is byte-identical across domain counts" (fun () ->
        let s =
          Edge_stream.power_law ~chunk_size:256 ~seed:31 ~n:700 ~m:2800 ()
        in
        let run domains =
          (Connectit.run_stream ~domains ~mode:Connectit.Deterministic s)
            .Connectit.labels
        in
        let reference = run 1 in
        List.iter
          (fun domains ->
            if run domains <> reference then
              Alcotest.failf "domains=%d labels differ" domains)
          [ 2; 3; 4 ]);
    case "det report counts rounds and components" (fun () ->
        let s =
          Edge_stream.erdos_renyi ~chunk_size:256 ~seed:37 ~n:400 ~m:1600 ()
        in
        let labels, report = Det_bulk.run ~domains:2 s in
        check Alcotest.int "components"
          (Components.count (oracle_labels s))
          report.Det_bulk.components;
        check Alcotest.bool "rounds counted" true (report.Det_bulk.rounds > 0);
        check Alcotest.int "labels length" 400 (Array.length labels));
    case "racy forest is schedule-dependent (counterexample)" (fun () ->
        (* The positive control: per-op racy unites with the same seed
           but a different edge-processing order must produce a
           different raw parent forest for at least one stream seed —
           while the *normalized labels* always agree.  Variant 0
           processes chunks forward, variant 1 in reverse: two legal
           schedules of the same input. *)
        let racy_forest stream ~variant =
          let d = Dsu.Driver.create ~seed:1 (Edge_stream.n stream) in
          let buf = Edge_stream.make_chunk stream in
          let chunks = Edge_stream.chunk_count stream in
          for j = 0 to chunks - 1 do
            let idx = if variant = 0 then j else chunks - 1 - j in
            Edge_stream.fill stream idx buf;
            for k = 0 to buf.Edge_stream.len - 1 do
              d.Dsu.Driver.unite buf.Edge_stream.src.(k)
                buf.Edge_stream.dst.(k)
            done
          done;
          d.Dsu.Driver.parents_snapshot ()
        in
        let distinguished =
          List.exists
            (fun seed ->
              let s =
                Edge_stream.rmat ~chunk_size:256 ~seed ~scale:9 ~edge_factor:4
                  ()
              in
              Determinism.distinguish
                ~schedules:[ (1, 0); (1, 1) ]
                ~run:(fun ~domains:_ ~variant -> racy_forest s ~variant)
                ())
            [ 41; 42; 43; 44 ]
        in
        check Alcotest.bool "some seed distinguishes schedules" true
          distinguished);
  ]

(* ----------------------------------------------------- driver + batch *)

let reference_labels n edges =
  Components.sequential (Graph.create ~n ~edges)

let driver_tests =
  let random_edges ~seed ~n ~m =
    let rng = Rng.create seed in
    Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n))
  in
  [
    case "driver agrees with the sequential oracle on every layout" (fun () ->
        let n = 300 in
        let edges = random_edges ~seed:51 ~n ~m:600 in
        let expected = reference_labels n edges in
        List.iter
          (fun plan ->
            let d = Dsu.Driver.create ~plan ~seed:3 n in
            Array.iter (fun (u, v) -> d.Dsu.Driver.unite u v) edges;
            let ok = ref true in
            for v = 0 to n - 1 do
              if
                d.Dsu.Driver.same_set v expected.(v) = false
                || d.Dsu.Driver.find v <> d.Dsu.Driver.find expected.(v)
              then ok := false
            done;
            if not !ok then
              Alcotest.failf "plan %s: wrong partition"
                (Dsu.Plan.to_string plan);
            check Alcotest.int
              (Dsu.Plan.to_string plan ^ " count_sets")
              (Components.count expected)
              (d.Dsu.Driver.count_sets ()))
          [
            Dsu.Plan.default;
            { Dsu.Plan.default with layout = Dsu.Plan.Padded };
            {
              Dsu.Plan.default with
              layout = Dsu.Plan.Boxed;
              memory_order = Dsu.Memory_order.Seq_cst;
            };
            {
              Dsu.Plan.default with
              linking = Dsu.Plan.By_rank;
              layout = Dsu.Plan.Packed;
            };
          ]);
    case "driver rejects invalid plans" (fun () ->
        expect_invalid "by-rank needs packed" (fun () ->
            Dsu.Driver.create
              ~plan:{ Dsu.Plan.default with linking = Dsu.Plan.By_rank }
              8);
        expect_invalid "n < 1" (fun () -> Dsu.Driver.create 0));
    case "find_batch agrees with find on every backend" (fun () ->
        let n = 200 in
        let edges = random_edges ~seed:53 ~n ~m:400 in
        let xs = Array.init n (fun i -> i) in
        List.iter
          (fun plan ->
            let d = Dsu.Driver.create ~plan ~seed:5 n in
            Array.iter (fun (u, v) -> d.Dsu.Driver.unite u v) edges;
            let batched = d.Dsu.Driver.find_batch xs in
            Array.iteri
              (fun i r ->
                if d.Dsu.Driver.find i <> r then
                  Alcotest.failf "plan %s: find_batch(%d) = %d <> find"
                    (Dsu.Plan.to_string plan) i r)
              batched)
          [
            Dsu.Plan.default;
            {
              Dsu.Plan.default with
              layout = Dsu.Plan.Boxed;
              memory_order = Dsu.Memory_order.Seq_cst;
            };
            {
              Dsu.Plan.default with
              linking = Dsu.Plan.By_rank;
              layout = Dsu.Plan.Packed;
            };
          ]);
    case "unite_batch equals per-op unites" (fun () ->
        let n = 250 in
        let edges = random_edges ~seed:57 ~n ~m:500 in
        let xs = Array.map fst edges and ys = Array.map snd edges in
        let expected = reference_labels n edges in
        let d = Dsu.Driver.create ~seed:7 n in
        d.Dsu.Driver.unite_batch xs ys;
        check Alcotest.int "count" (Components.count expected)
          (d.Dsu.Driver.count_sets ());
        let answers = d.Dsu.Driver.same_set_batch xs ys in
        Array.iter
          (fun a -> if not a then Alcotest.fail "united pair not same_set")
          answers);
  ]

(* ---------------------------------------------------------- adversarial *)

let adversarial_tests =
  [
    case "pt_incremental shape" (fun () ->
        let n = 64 and queries_per_phase = 16 in
        let ops =
          Workload.Adversarial.pt_incremental ~rng:(Rng.create 61) ~n
            ~queries_per_phase
        in
        let unions = ref 0 and queries = ref 0 in
        List.iter
          (fun op ->
            match op with
            | Workload.Op.Unite (u, v) ->
              incr unions;
              if u < 0 || u >= n || v < 0 || v >= n then
                Alcotest.fail "union out of range"
            | Workload.Op.Same_set (u, v) ->
              incr queries;
              if u < 0 || u >= n || v < 0 || v >= n then
                Alcotest.fail "query out of range"
            | Workload.Op.Find _ -> Alcotest.fail "unexpected Find")
          ops;
        (* 64 reps halve over 6 phases: 32+16+8+4+2+1 unions. *)
        check Alcotest.int "unions" 63 !unions;
        check Alcotest.int "queries" (6 * queries_per_phase) !queries;
        (* Replaying the whole workload must end fully connected. *)
        let d = Dsu.Driver.create n in
        List.iter
          (function
            | Workload.Op.Unite (u, v) -> d.Dsu.Driver.unite u v
            | Workload.Op.Same_set (u, v) -> ignore (d.Dsu.Driver.same_set u v)
            | Workload.Op.Find x -> ignore (d.Dsu.Driver.find x))
          ops;
        check Alcotest.int "one component" 1 (d.Dsu.Driver.count_sets ()));
  ]

(* -------------------------------------------------------------- harness *)

let tiny_config =
  {
    Connectivity.default_config with
    Connectivity.scale = 8;
    edge_factor = 4;
    chunk_size = 256;
    seed = 71;
    domains_list = [ 1; 2 ];
    gens = [ Connectivity.Rmat ];
    samplings = [ Connectit.No_sampling ];
    finishes = [ Connectit.Per_op; Connectit.Bulk ];
    modes = [ Connectit.Racy ];
    adversarial_n = 256;
  }

let synthetic_point ~finish ~rate =
  {
    Connectivity.gen = "rmat";
    n = 256;
    m = 1024;
    domains = 2;
    sampling = "none";
    finish;
    mode = "racy";
    plan = Dsu.Plan.to_string Dsu.Plan.default;
    seconds = 0.1;
    edges_per_sec = rate;
    finish_edges_per_sec = rate;
    sample_ns = 0;
    finish_ns = 100;
    label_ns = 0;
    skipped_ratio = 0.;
    components = 1;
    det_rounds = 0;
  }

let harness_tests =
  [
    case "sweep produces the full grid with positive rates" (fun () ->
        let points = Connectivity.sweep ~config:tiny_config () in
        check Alcotest.int "points" 4 (List.length points);
        List.iter
          (fun p ->
            check Alcotest.bool "rate > 0" true
              (p.Connectivity.edges_per_sec > 0.);
            check Alcotest.bool "finish rate > 0" true
              (p.Connectivity.finish_edges_per_sec > 0.);
            check Alcotest.int "m" 1024 p.Connectivity.m)
          points);
    case "guard_finish passes and fails as designed" (fun () ->
        let per_op = synthetic_point ~finish:"per-op" ~rate:10.0 in
        let ok_pair = [ per_op; synthetic_point ~finish:"bulk" ~rate:9.7 ] in
        (match Connectivity.guard_finish ~min_ratio:0.9 ok_pair with
        | Ok (worst, pairs) ->
          check Alcotest.int "one pair" 1 (List.length pairs);
          check Alcotest.bool "worst ~0.97" true (worst > 0.96 && worst < 0.98)
        | Error e -> Alcotest.failf "unexpected guard failure: %s" e);
        let bad_pair = [ per_op; synthetic_point ~finish:"bulk" ~rate:5.0 ] in
        match Connectivity.guard_finish ~min_ratio:0.9 bad_pair with
        | Ok _ -> Alcotest.fail "guard should have failed at ratio 0.5"
        | Error _ -> ());
    case "report round-trips through perfdiff" (fun () ->
        let points = Connectivity.sweep ~config:tiny_config () in
        let adversarial =
          Connectivity.run_adversarial ~config:tiny_config ~domains:2 ()
        in
        check Alcotest.bool "adversarial ops" true
          (adversarial.Connectivity.a_ops > 0);
        let doc = Connectivity.to_json ~config:tiny_config ~adversarial points in
        let s = Repro_obs.Json.to_string doc in
        match Harness.Perfdiff.diff_strings ~base:s ~current:s () with
        | Ok r ->
          check Alcotest.string "kind" "dsu-connectivity/v1"
            r.Harness.Perfdiff.kind;
          check Alcotest.bool "rows" true (List.length r.Harness.Perfdiff.rows > 0);
          check Alcotest.int "no regressions vs self" 0
            (List.length r.Harness.Perfdiff.regressions)
        | Error e -> Alcotest.failf "perfdiff: %s" e);
    case "gen string round trip" (fun () ->
        List.iter
          (fun g ->
            check Alcotest.bool "round trip" true
              (Connectivity.gen_of_string (Connectivity.gen_to_string g)
              = Some g))
          Connectivity.all_gens);
  ]

let () =
  Alcotest.run "connectivity"
    [
      ("edge_stream", edge_stream_tests);
      ("generator_hygiene", generator_hygiene_tests);
      ("pipeline", pipeline_tests);
      ("determinism", determinism_tests);
      ("driver", driver_tests);
      ("adversarial", adversarial_tests);
      ("harness", harness_tests);
    ]
