(* Tests for the concurrent linking-by-rank variant (Dsu.Rank) — Section 7's
   assumption-free algorithm. *)

module Rank = Dsu.Rank
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let native_tests =
  [
    case "singletons at creation" (fun () ->
        let d = Rank.Native.create 8 in
        check Alcotest.int "count" 8 (Rank.Native.count_sets d);
        check Alcotest.bool "apart" false (Rank.Native.same_set d 0 1);
        check Alcotest.int "rank 0" 0 (Rank.Native.rank_of d 0));
    case "unite and transitivity" (fun () ->
        let d = Rank.Native.create 8 in
        Rank.Native.unite d 0 1;
        Rank.Native.unite d 1 2;
        check Alcotest.bool "0~2" true (Rank.Native.same_set d 0 2);
        check Alcotest.int "count" 6 (Rank.Native.count_sets d));
    case "rank tie promotes the winner" (fun () ->
        let d = Rank.Native.create 4 in
        Rank.Native.unite d 0 1;
        (* Both roots had rank 0; after the tie-break one root has rank 1. *)
        let root = Rank.Native.find d 0 in
        check Alcotest.int "winner rank" 1 (Rank.Native.rank_of d root));
    case "ranks are bounded by lg n" (fun () ->
        let n = 256 in
        let d = Rank.Native.create n in
        let rng = Rng.create 3 in
        for _ = 1 to 4 * n do
          Rank.Native.unite d (Rng.int rng n) (Rng.int rng n)
        done;
        for i = 0 to n - 1 do
          check Alcotest.bool (string_of_int i) true (Rank.Native.rank_of d i <= 8)
        done);
    case "matches quick-find oracle" (fun () ->
        let n = 64 in
        let d = Rank.Native.create n in
        let q = Quick_find.create n in
        let rng = Rng.create 7 in
        for _ = 1 to 800 do
          let x = Rng.int rng n and y = Rng.int rng n in
          if Rng.bool rng then begin
            Rank.Native.unite d x y;
            Quick_find.unite q x y
          end
          else
            check Alcotest.bool "query" (Quick_find.same_set q x y)
              (Rank.Native.same_set d x y)
        done;
        check Alcotest.int "count" (Quick_find.count_sets q) (Rank.Native.count_sets d));
    case "adversarial chain stays logarithmic" (fun () ->
        (* The id-aware adversarial order that ruins randomized linking
           (see E15): rank linking is immune by construction. *)
        let n = 1 lsl 10 in
        let d = Rank.Native.create n in
        for i = 0 to n - 2 do
          Rank.Native.unite d i (i + 1)
        done;
        let max_depth = ref 0 in
        for i = 0 to n - 1 do
          let u = ref i and depth = ref 0 in
          while Rank.Native.parent_of d !u <> !u do
            u := Rank.Native.parent_of d !u;
            incr depth
          done;
          max_depth := max !max_depth !depth
        done;
        check Alcotest.bool "height <= lg n" true (!max_depth <= 10));
    case "out-of-range rejected" (fun () ->
        let d = Rank.Native.create 4 in
        Alcotest.check_raises "oob" (Invalid_argument "Rank_dsu: node out of range")
          (fun () -> ignore (Rank.Native.find d 4)));
    case "stats count links" (fun () ->
        let d = Rank.Native.create ~collect_stats:true 16 in
        for i = 0 to 14 do
          Rank.Native.unite d i (i + 1)
        done;
        check Alcotest.int "links" 15 (Rank.Native.stats d).Dsu.Stats.links);
    case "parallel domains agree with oracle" (fun () ->
        let n = 300 in
        let d = Rank.Native.create n in
        let per_domain = 1500 in
        let worker k () =
          let rng = Rng.create (400 + k) in
          for _ = 1 to per_domain do
            Rank.Native.unite d (Rng.int rng n) (Rng.int rng n)
          done
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        let q = Quick_find.create n in
        for k = 0 to 3 do
          let rng = Rng.create (400 + k) in
          for _ = 1 to per_domain do
            Quick_find.unite q (Rng.int rng n) (Rng.int rng n)
          done
        done;
        check Alcotest.int "count" (Quick_find.count_sets q) (Rank.Native.count_sets d));
  ]

let sim_tests =
  [
    case "sim partition matches oracle under adversarial schedules" (fun () ->
        let n = 20 in
        let rng = Rng.create 31 in
        let ops_lists =
          Array.init 3 (fun _ ->
              List.init 10 (fun _ -> (Rng.int rng n, Rng.int rng n)))
        in
        let q = Quick_find.create n in
        Array.iter (List.iter (fun (x, y) -> Quick_find.unite q x y)) ops_lists;
        List.iter
          (fun sched ->
            let h = Rank.Sim.handle n in
            let bodies =
              Array.map
                (List.map (fun (x, y) -> Rank.Sim.unite_op h x y))
                ops_lists
            in
            let outcome =
              Apram.Sim.run_ops ~mem_size:(Rank.Sim.mem_size n)
                ~init:(Rank.Sim.init n) ~sched bodies
            in
            let parent i = Apram.Memory.peek outcome.Apram.Sim.memory i mod n in
            let rec root i = if parent i = i then i else root (parent i) in
            for x = 0 to n - 1 do
              for y = x to n - 1 do
                check Alcotest.bool
                  (Printf.sprintf "%s %d %d" (Apram.Scheduler.name sched) x y)
                  (Quick_find.same_set q x y)
                  (root x = root y)
              done
            done)
          [
            Apram.Scheduler.round_robin ();
            Apram.Scheduler.random ~seed:5;
            Apram.Scheduler.cas_adversary ~seed:6;
            Apram.Scheduler.laggard ~seed:7 ~victim:0 ~delay:9;
          ]);
    case "sim histories linearize" (fun () ->
        let n = 6 in
        let rng = Rng.create 41 in
        for trial = 1 to 15 do
          let h = Rank.Sim.handle n in
          let ops =
            Array.init 3 (fun _ ->
                List.init 3 (fun _ ->
                    let x = Rng.int rng n and y = Rng.int rng n in
                    if Rng.bool rng then Rank.Sim.unite_op h x y
                    else Rank.Sim.same_set_op h x y))
          in
          let outcome =
            Apram.Sim.run_ops ~mem_size:(Rank.Sim.mem_size n) ~init:(Rank.Sim.init n)
              ~sched:(Apram.Scheduler.random ~seed:trial) ops
          in
          match Lincheck.Checker.check ~n outcome.Apram.Sim.history with
          | Lincheck.Checker.Linearizable -> ()
          | Lincheck.Checker.Not_linearizable msg -> Alcotest.fail msg
        done);
  ]

let () = Alcotest.run "rank_dsu" [ ("native", native_tests); ("sim", sim_tests) ]
