(* Tests for the baselines: the Anderson–Woll reconstruction (native and
   simulated, with and without indirection modeling) and the global-lock
   DSU. *)

module AW = Baselines.Anderson_woll
module Locked = Baselines.Locked_dsu
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let aw_native_tests =
  [
    case "singletons at creation" (fun () ->
        let d = AW.Native.create 8 in
        check Alcotest.int "count" 8 (AW.Native.count_sets d);
        check Alcotest.bool "0!~1" false (AW.Native.same_set d 0 1));
    case "unite and transitivity" (fun () ->
        let d = AW.Native.create 8 in
        AW.Native.unite d 0 1;
        AW.Native.unite d 1 2;
        check Alcotest.bool "0~2" true (AW.Native.same_set d 0 2);
        check Alcotest.int "count" 6 (AW.Native.count_sets d));
    case "matches oracle on random workload" (fun () ->
        List.iter
          (fun indirection ->
            let n = 60 in
            let d = AW.Native.create ~indirection n in
            let q = Quick_find.create n in
            let rng = Rng.create 23 in
            for _ = 1 to 600 do
              let x = Rng.int rng n and y = Rng.int rng n in
              if Rng.bool rng then begin
                AW.Native.unite d x y;
                Quick_find.unite q x y
              end
              else
                check Alcotest.bool "query" (Quick_find.same_set q x y)
                  (AW.Native.same_set d x y)
            done;
            check Alcotest.int "count" (Quick_find.count_sets q)
              (AW.Native.count_sets d))
          [ false; true ]);
    case "find returns a member of the set" (fun () ->
        let d = AW.Native.create 8 in
        AW.Native.unite d 3 4;
        let r = AW.Native.find d 3 in
        check Alcotest.bool "same" true (AW.Native.same_set d r 4));
  ]
  @ [
      case "star unions collapse to one set" (fun () ->
          let n = 64 in
          let d = AW.Native.create ~collect_stats:true n in
          List.iter
            (fun op ->
              match op with
              | Workload.Op.Unite (x, y) -> AW.Native.unite d x y
              | Workload.Op.Same_set (x, y) -> ignore (AW.Native.same_set d x y)
              | Workload.Op.Find x -> ignore (AW.Native.find d x))
            (Workload.Adversarial.star ~n);
          check Alcotest.int "one set" 1 (AW.Native.count_sets d);
          check Alcotest.int "links" (n - 1) (AW.Native.stats d).Dsu.Stats.links);
      case "stats disabled by default" (fun () ->
          let d = AW.Native.create 4 in
          AW.Native.unite d 0 1;
          check Alcotest.int "zero" 0 (AW.Native.stats d).Dsu.Stats.unite_calls);
    ]

let aw_sim_tests =
  [
    case "sim partition matches oracle under schedulers" (fun () ->
        let n = 20 in
        let rng = Rng.create 3 in
        let ops_lists =
          Array.init 3 (fun _ ->
              List.init 10 (fun _ ->
                  Workload.Op.Unite (Rng.int rng n, Rng.int rng n)))
        in
        let q = Quick_find.create n in
        Array.iter
          (List.iter (fun op ->
               match op with
               | Workload.Op.Unite (x, y) -> Quick_find.unite q x y
               | Workload.Op.Same_set _ | Workload.Op.Find _ -> ()))
          ops_lists;
        List.iter
          (fun sched ->
            let h = AW.Sim.handle n in
            let bodies = Array.map (Workload.Op.to_sim_ops_aw h) ops_lists in
            let outcome =
              Apram.Sim.run_ops ~mem_size:(AW.Sim.mem_size n) ~init:(AW.Sim.init n)
                ~sched bodies
            in
            (* Decode the final parents from the packed words. *)
            let parent i = Apram.Memory.peek outcome.Apram.Sim.memory i mod n in
            let rec root i = if parent i = i then i else root (parent i) in
            for x = 0 to n - 1 do
              for y = x to n - 1 do
                check Alcotest.bool
                  (Printf.sprintf "%s %d %d" (Apram.Scheduler.name sched) x y)
                  (Quick_find.same_set q x y)
                  (root x = root y)
              done
            done)
          [
            Apram.Scheduler.round_robin ();
            Apram.Scheduler.random ~seed:4;
            Apram.Scheduler.cas_adversary ~seed:5;
          ]);
    case "indirection costs more steps on the same workload" (fun () ->
        let n = 128 in
        let rng = Rng.create 9 in
        let ops =
          Workload.Op.round_robin
            (Workload.Random_mix.spanning_unites ~rng ~n
            @ Workload.Adversarial.all_same_set ~rng ~n ~m:n)
            ~p:4
        in
        let plain = Harness.Measure.run_sim_aw ~indirection:false ~n ~seed:6 ~ops () in
        let ind = Harness.Measure.run_sim_aw ~indirection:true ~n ~seed:6 ~ops () in
        check Alcotest.bool "more steps" true
          (ind.Harness.Measure.aw_total_steps
          > plain.Harness.Measure.aw_total_steps);
        check Alcotest.bool "at most 2x" true
          (ind.Harness.Measure.aw_total_steps
          <= 2 * plain.Harness.Measure.aw_total_steps));
    case "aw histories linearize" (fun () ->
        let n = 6 in
        let rng = Rng.create 13 in
        for trial = 1 to 10 do
          let ops =
            Array.init 3 (fun _ ->
                List.init 3 (fun _ ->
                    let x = Rng.int rng n and y = Rng.int rng n in
                    if Rng.bool rng then Workload.Op.Unite (x, y)
                    else Workload.Op.Same_set (x, y)))
          in
          let h = AW.Sim.handle n in
          let bodies = Array.map (Workload.Op.to_sim_ops_aw h) ops in
          let outcome =
            Apram.Sim.run_ops ~mem_size:(AW.Sim.mem_size n) ~init:(AW.Sim.init n)
              ~sched:(Apram.Scheduler.random ~seed:trial) bodies
          in
          match Lincheck.Checker.check ~n outcome.Apram.Sim.history with
          | Lincheck.Checker.Linearizable -> ()
          | Lincheck.Checker.Not_linearizable msg -> Alcotest.fail msg
        done);
  ]

let locked_tests =
  [
    case "basic operations" (fun () ->
        let d = Locked.create 8 in
        Locked.unite d 0 1;
        check Alcotest.bool "0~1" true (Locked.same_set d 0 1);
        check Alcotest.int "count" 7 (Locked.count_sets d);
        check Alcotest.bool "find member" true (Locked.same_set d (Locked.find d 0) 1));
    case "concurrent domains agree with oracle" (fun () ->
        let n = 200 in
        let d = Locked.create n in
        let per_domain = 500 in
        let worker k () =
          let rng = Rng.create (100 + k) in
          for _ = 1 to per_domain do
            Locked.unite d (Rng.int rng n) (Rng.int rng n)
          done
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        (* Replay the same deterministic streams sequentially. *)
        let q = Quick_find.create n in
        for k = 0 to 3 do
          let rng = Rng.create (100 + k) in
          for _ = 1 to per_domain do
            Quick_find.unite q (Rng.int rng n) (Rng.int rng n)
          done
        done;
        check Alcotest.int "count" (Quick_find.count_sets q) (Locked.count_sets d));
    case "counters accessible" (fun () ->
        let d = Locked.create 4 in
        Locked.unite d 0 1;
        check Alcotest.int "unites" 1 (Locked.counters d).Sequential.Seq_dsu.unites);
  ]

let () =
  Alcotest.run "baselines"
    [
      ("aw_native", aw_native_tests);
      ("aw_sim", aw_sim_tests);
      ("locked", locked_tests);
    ]
