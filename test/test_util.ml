(* Unit tests for the utility library: PRNG, inverse Ackermann, ranks,
   statistics, histograms, tables, atomic arrays. *)

module Rng = Repro_util.Rng
module Alpha = Repro_util.Alpha
module Rank = Repro_util.Rank
module Stats = Repro_util.Stats
module Histogram = Repro_util.Histogram
module Table = Repro_util.Table
module Atomic_array = Repro_util.Atomic_array

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ Rng *)

let rng_tests =
  [
    case "same seed, same stream" (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        for _ = 1 to 100 do
          check Alcotest.int64 "draw" (Rng.int64 a) (Rng.int64 b)
        done);
    case "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Rng.int64 a = Rng.int64 b then incr same
        done;
        check Alcotest.bool "streams differ" true (!same < 4));
    case "copy replays the stream" (fun () ->
        let a = Rng.create 7 in
        ignore (Rng.int64 a);
        let b = Rng.copy a in
        for _ = 1 to 50 do
          check Alcotest.int64 "draw" (Rng.int64 a) (Rng.int64 b)
        done);
    case "split diverges from parent" (fun () ->
        let a = Rng.create 9 in
        let child = Rng.split a in
        let equal = ref 0 in
        for _ = 1 to 64 do
          if Rng.int64 a = Rng.int64 child then incr equal
        done;
        check Alcotest.bool "diverged" true (!equal < 4));
    case "int respects bound" (fun () ->
        let a = Rng.create 3 in
        for _ = 1 to 10_000 do
          let v = Rng.int a 17 in
          check Alcotest.bool "in range" true (v >= 0 && v < 17)
        done);
    case "int covers all residues" (fun () ->
        let a = Rng.create 5 in
        let seen = Array.make 7 false in
        for _ = 1 to 1000 do
          seen.(Rng.int a 7) <- true
        done;
        Array.iteri (fun i s -> check Alcotest.bool (string_of_int i) true s) seen);
    case "int rejects non-positive bound" (fun () ->
        let a = Rng.create 1 in
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
          (fun () -> ignore (Rng.int a 0)));
    case "int handles large bounds" (fun () ->
        let a = Rng.create 11 in
        let bound = (1 lsl 40) + 37 in
        for _ = 1 to 1000 do
          let v = Rng.int a bound in
          check Alcotest.bool "in range" true (v >= 0 && v < bound)
        done);
    case "int_in inclusive range" (fun () ->
        let a = Rng.create 13 in
        let lo = -5 and hi = 5 in
        let seen_lo = ref false and seen_hi = ref false in
        for _ = 1 to 2000 do
          let v = Rng.int_in a lo hi in
          check Alcotest.bool "in range" true (v >= lo && v <= hi);
          if v = lo then seen_lo := true;
          if v = hi then seen_hi := true
        done;
        check Alcotest.bool "endpoints reachable" true (!seen_lo && !seen_hi));
    case "int_in rejects empty range" (fun () ->
        let a = Rng.create 1 in
        Alcotest.check_raises "empty" (Invalid_argument "Rng.int_in: empty range")
          (fun () -> ignore (Rng.int_in a 3 2)));
    case "float in [0,1)" (fun () ->
        let a = Rng.create 17 in
        for _ = 1 to 10_000 do
          let f = Rng.float a in
          check Alcotest.bool "in range" true (f >= 0. && f < 1.)
        done);
    case "float mean near one half" (fun () ->
        let a = Rng.create 19 in
        let sum = ref 0. in
        for _ = 1 to 10_000 do
          sum := !sum +. Rng.float a
        done;
        let mean = !sum /. 10_000. in
        check Alcotest.bool "mean" true (Float.abs (mean -. 0.5) < 0.02));
    case "bool is roughly fair" (fun () ->
        let a = Rng.create 23 in
        let heads = ref 0 in
        for _ = 1 to 10_000 do
          if Rng.bool a then incr heads
        done;
        check Alcotest.bool "fair" true (abs (!heads - 5000) < 300));
    case "bits30 in range" (fun () ->
        let a = Rng.create 29 in
        for _ = 1 to 1000 do
          let v = Rng.bits30 a in
          check Alcotest.bool "range" true (v >= 0 && v < 1 lsl 30)
        done);
    case "permutation is a permutation" (fun () ->
        let a = Rng.create 31 in
        let p = Rng.permutation a 100 in
        let seen = Array.make 100 false in
        Array.iter
          (fun v ->
            check Alcotest.bool "fresh" false seen.(v);
            seen.(v) <- true)
          p);
    case "permutation varies with seed" (fun () ->
        let p1 = Rng.permutation (Rng.create 1) 50 in
        let p2 = Rng.permutation (Rng.create 2) 50 in
        check Alcotest.bool "different" true (p1 <> p2));
    case "shuffle preserves multiset" (fun () ->
        let a = Rng.create 37 in
        let arr = [| 1; 1; 2; 3; 5; 8; 13 |] in
        let before = List.sort compare (Array.to_list arr) in
        Rng.shuffle a arr;
        check
          Alcotest.(list int)
          "multiset" before
          (List.sort compare (Array.to_list arr)));
  ]

(* ---------------------------------------------------------------- Alpha *)

let alpha_tests =
  [
    case "A_0 is successor" (fun () ->
        List.iter
          (fun j -> check Alcotest.int (string_of_int j) (j + 1) (Alpha.ackermann 0 j))
          [ 0; 1; 5; 100 ]);
    case "A_1 adds two" (fun () ->
        List.iter
          (fun j -> check Alcotest.int (string_of_int j) (j + 2) (Alpha.ackermann 1 j))
          [ 0; 1; 7; 1000 ]);
    case "A_2 is 2j+3" (fun () ->
        List.iter
          (fun j ->
            check Alcotest.int (string_of_int j) ((2 * j) + 3) (Alpha.ackermann 2 j))
          [ 0; 1; 4; 50 ]);
    case "A_3 values" (fun () ->
        (* A_3(0) = A_2(1) = 5; A_3(j) = 2 A_3(j-1) + 3. *)
        check Alcotest.int "A_3(0)" 5 (Alpha.ackermann 3 0);
        check Alcotest.int "A_3(1)" 13 (Alpha.ackermann 3 1);
        check Alcotest.int "A_3(2)" 29 (Alpha.ackermann 3 2);
        check Alcotest.int "A_3(3)" 61 (Alpha.ackermann 3 3));
    case "A_4 explodes but terminates" (fun () ->
        check Alcotest.int "A_4(0)" 13 (Alpha.ackermann 4 0);
        check Alcotest.bool "A_4(2) saturates" true (Alpha.ackermann 4 2 > 1 lsl 60));
    case "huge arguments terminate quickly" (fun () ->
        check Alcotest.bool "A_2 huge" true (Alpha.ackermann 2 (1 lsl 55) > 1 lsl 56);
        check Alcotest.bool "A_5 huge" true (Alpha.ackermann 5 100 > 1 lsl 60));
    case "negative arguments rejected" (fun () ->
        Alcotest.check_raises "neg"
          (Invalid_argument "Alpha.ackermann: negative argument") (fun () ->
            ignore (Alpha.ackermann (-1) 0)));
    case "alpha of tiny n" (fun () ->
        (* A_1(0) = 2 > 1, so alpha(1, 0) = 1. *)
        check Alcotest.int "alpha(1,0)" 1 (Alpha.alpha 1 0.));
    case "alpha is tiny for huge n" (fun () ->
        (* A_5(0) = 49149 < 10^9 < A_6(0), so alpha(10^9, 0) = 6; with d = 1
           the tower starts one level higher: A_4(1) = 49149, so alpha = 5. *)
        check Alcotest.int "n=10^9 d=0" 6 (Alpha.alpha 1_000_000_000 0.);
        check Alcotest.int "n=10^9 d=1" 5 (Alpha.alpha 1_000_000_000 1.));
    case "alpha non-increasing in d" (fun () ->
        let n = 1 lsl 20 in
        let prev = ref max_int in
        List.iter
          (fun d ->
            let a = Alpha.alpha n d in
            check Alcotest.bool "monotone" true (a <= !prev);
            prev := a)
          [ 0.; 1.; 4.; 16.; 256.; 65536. ]);
    case "alpha non-decreasing in n" (fun () ->
        let prev = ref 0 in
        List.iter
          (fun n ->
            let a = Alpha.alpha n 1. in
            check Alcotest.bool "monotone" true (a >= !prev);
            prev := a)
          [ 2; 16; 256; 65536; 1 lsl 30 ]);
    case "alpha large d gives 1" (fun () ->
        (* A_1(n) = n + 2 > n, so once d >= n, alpha = 1. *)
        check Alcotest.int "d = n" 1 (Alpha.alpha 100 100.));
    case "index function level 0" (fun () ->
        (* b(0, k) = min j with j + 1 > k = k. *)
        List.iter
          (fun k -> check Alcotest.int (string_of_int k) k (Alpha.index 0 k))
          [ 0; 1; 5; 100 ]);
    case "index function level 1" (fun () ->
        (* b(1, k) = min j with j + 2 > k = max 0 (k - 1). *)
        List.iter
          (fun k ->
            check Alcotest.int (string_of_int k) (max 0 (k - 1)) (Alpha.index 1 k))
          [ 0; 1; 2; 10 ]);
    case "level is 0 iff ranks equal" (fun () ->
        (* a(k, j) with j = k: A_0(b(0,k)) = k + 1 > k, so level 0. *)
        check Alcotest.int "equal ranks" 0 (Alpha.level ~d:1. ~n:100 5 5);
        check Alcotest.bool "strictly larger parent rank" true
          (Alpha.level ~d:1. ~n:100 5 6 > 0));
    case "floor_log2 values" (fun () ->
        check Alcotest.int "1" 0 (Alpha.floor_log2 1);
        check Alcotest.int "2" 1 (Alpha.floor_log2 2);
        check Alcotest.int "3" 1 (Alpha.floor_log2 3);
        check Alcotest.int "4" 2 (Alpha.floor_log2 4);
        check Alcotest.int "1023" 9 (Alpha.floor_log2 1023);
        check Alcotest.int "1024" 10 (Alpha.floor_log2 1024));
    case "floor_log2 rejects zero" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Alpha.floor_log2: argument must be >= 1") (fun () ->
            ignore (Alpha.floor_log2 0)));
  ]

(* ----------------------------------------------------------------- Rank *)

let rank_tests =
  [
    case "top element has max rank" (fun () ->
        List.iter
          (fun n ->
            check Alcotest.int (string_of_int n) (Alpha.floor_log2 n)
              (Rank.rank ~n n))
          [ 1; 2; 7; 8; 1000; 1024 ]);
    case "bottom elements have rank 0" (fun () ->
        (* For n = 1023 (not a power of two) the lower half is rank 0; for
           n a power of two only x = 1 is (floor lg (n - 1 + 1) = lg n). *)
        let n = 1023 in
        check Alcotest.int "x=1" 0 (Rank.rank ~n 1);
        check Alcotest.int "x=n/2" 0 (Rank.rank ~n (n / 2));
        check Alcotest.int "power of two, x=1" 0 (Rank.rank ~n:1024 1);
        check Alcotest.int "power of two, x=2" 1 (Rank.rank ~n:1024 2));
    case "rank is monotone in x" (fun () ->
        let n = 500 in
        let prev = ref 0 in
        for x = 1 to n do
          let r = Rank.rank ~n x in
          check Alcotest.bool "monotone" true (r >= !prev);
          prev := r
        done);
    case "count_with_rank sums to n" (fun () ->
        List.iter
          (fun n ->
            let total = ref 0 in
            for r = 0 to Rank.max_rank ~n do
              total := !total + Rank.count_with_rank ~n r
            done;
            check Alcotest.int (string_of_int n) n !total)
          [ 1; 2; 3; 17; 64; 1000 ]);
    case "count_with_rank matches brute force" (fun () ->
        let n = 200 in
        for r = 0 to Rank.max_rank ~n do
          let brute = ref 0 in
          for x = 1 to n do
            if Rank.rank ~n x = r then incr brute
          done;
          check Alcotest.int (string_of_int r) !brute (Rank.count_with_rank ~n r)
        done);
    case "high ranks are geometrically rare" (fun () ->
        let n = 1 lsl 12 in
        check Alcotest.int "rank max" 1 (Rank.count_with_rank ~n (Rank.max_rank ~n));
        (* Counts halve as rank increases (from rank 1 up; rank 0 is the
           single element x = 1 when n is a power of two). *)
        check Alcotest.int "rank 1" (n / 2) (Rank.count_with_rank ~n 1);
        check Alcotest.int "rank 2" (n / 4) (Rank.count_with_rank ~n 2);
        check Alcotest.int "rank 3" (n / 8) (Rank.count_with_rank ~n 3));
    case "out-of-range rejected" (fun () ->
        Alcotest.check_raises "x=0" (Invalid_argument "Rank.rank: element out of range")
          (fun () -> ignore (Rank.rank ~n:10 0)));
  ]

(* ---------------------------------------------------------------- Stats *)

let float_eq = Alcotest.float 1e-9

let stats_tests =
  [
    case "mean" (fun () ->
        check float_eq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]));
    case "stddev of constant sample is 0" (fun () ->
        check float_eq "sd" 0. (Stats.stddev [| 5.; 5.; 5. |]));
    case "stddev known value" (fun () ->
        (* Sample sd of 1..5 is sqrt(2.5). *)
        check (Alcotest.float 1e-6) "sd" (sqrt 2.5)
          (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]));
    case "percentile endpoints" (fun () ->
        let xs = [| 10.; 20.; 30.; 40. |] in
        check float_eq "p0" 10. (Stats.percentile xs 0.);
        check float_eq "p100" 40. (Stats.percentile xs 100.));
    case "percentile interpolates" (fun () ->
        check float_eq "p50" 25. (Stats.percentile [| 10.; 20.; 30.; 40. |] 50.));
    case "percentile unsorted input" (fun () ->
        check float_eq "p50" 25. (Stats.percentile [| 40.; 10.; 30.; 20. |] 50.));
    case "summarize fields" (fun () ->
        let s = Stats.summarize [| 3.; 1.; 2. |] in
        check Alcotest.int "count" 3 s.Stats.count;
        check float_eq "min" 1. s.Stats.min;
        check float_eq "max" 3. s.Stats.max;
        check float_eq "median" 2. s.Stats.median);
    case "summarize empty raises" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
          (fun () -> ignore (Stats.summarize [||])));
    case "linear_fit recovers an exact line" (fun () ->
        let points = Array.init 10 (fun i -> (float_of_int i, (3. *. float_of_int i) +. 7.)) in
        let slope, intercept = Stats.linear_fit points in
        check (Alcotest.float 1e-6) "slope" 3. slope;
        check (Alcotest.float 1e-6) "intercept" 7. intercept);
    case "r_squared is 1 for exact fit" (fun () ->
        let points = Array.init 5 (fun i -> (float_of_int i, 2. *. float_of_int i)) in
        check (Alcotest.float 1e-9) "r2" 1. (Stats.r_squared points));
    case "linear_fit rejects degenerate x" (fun () ->
        Alcotest.check_raises "degenerate"
          (Invalid_argument "Stats.linear_fit: degenerate x values") (fun () ->
            ignore (Stats.linear_fit [| (1., 1.); (1., 2.) |])));
    case "summarize_ints" (fun () ->
        let s = Stats.summarize_ints [| 1; 2; 3 |] in
        check float_eq "mean" 2. s.Stats.mean);
  ]

(* ------------------------------------------------------------ Histogram *)

let histogram_tests =
  [
    case "add and count" (fun () ->
        let h = Histogram.create () in
        Histogram.add h 3;
        Histogram.add h 3;
        Histogram.add h 5;
        check Alcotest.int "count 3" 2 (Histogram.count h 3);
        check Alcotest.int "count 5" 1 (Histogram.count h 5);
        check Alcotest.int "count 7" 0 (Histogram.count h 7);
        check Alcotest.int "total" 3 (Histogram.total h));
    case "add_many" (fun () ->
        let h = Histogram.create () in
        Histogram.add_many h 2 10;
        check Alcotest.int "count" 10 (Histogram.count h 2));
    case "keys sorted" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 5; 1; 3; 1 ];
        check Alcotest.(list int) "keys" [ 1; 3; 5 ] (Histogram.keys h));
    case "max_key" (fun () ->
        let h = Histogram.create () in
        check Alcotest.(option int) "empty" None (Histogram.max_key h);
        Histogram.add h 9;
        Histogram.add h 2;
        check Alcotest.(option int) "max" (Some 9) (Histogram.max_key h));
    case "mean" (fun () ->
        let h = Histogram.create () in
        Histogram.add_many h 2 2;
        Histogram.add_many h 4 2;
        check float_eq "mean" 3. (Histogram.mean h));
    case "negative count rejected" (fun () ->
        let h = Histogram.create () in
        Alcotest.check_raises "neg" (Invalid_argument "Histogram.add_many: negative count")
          (fun () -> Histogram.add_many h 1 (-1)));
  ]

(* ---------------------------------------------------------------- Table *)

let table_tests =
  [
    case "render contains headers and cells" (fun () ->
        let t = Table.create ~headers:[ "a"; "bb" ] in
        Table.add_row t [ "1"; "22" ];
        let s = Table.render t in
        check Alcotest.bool "has a" true (String.length s > 0);
        check Alcotest.bool "header" true
          (String.length s >= 2 && String.sub s 0 1 = "a"));
    case "wrong arity rejected" (fun () ->
        let t = Table.create ~headers:[ "a"; "b" ] in
        Alcotest.check_raises "arity"
          (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
            Table.add_row t [ "only one" ]));
    case "rows render in insertion order" (fun () ->
        let t = Table.create ~headers:[ "x" ] in
        Table.add_row t [ "first" ];
        Table.add_row t [ "second" ];
        let s = Table.render t in
        let first_idx =
          match String.index_opt s 'f' with Some i -> i | None -> -1
        in
        let second_idx =
          let rec find i =
            if i >= String.length s - 5 then -1
            else if String.sub s i 6 = "second" then i
            else find (i + 1)
          in
          find 0
        in
        check Alcotest.bool "order" true (first_idx >= 0 && first_idx < second_idx));
    case "cell formatting" (fun () ->
        check Alcotest.string "int" "42" (Table.cell_int 42);
        check Alcotest.string "float" "3.14" (Table.cell_float 3.14159);
        check Alcotest.string "float decimals" "3.1416"
          (Table.cell_float ~decimals:4 3.14159);
        check Alcotest.string "ratio" "2.50x" (Table.cell_ratio 2.5));
    case "aligned create validates lengths" (fun () ->
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Table.create_aligned: length mismatch") (fun () ->
            ignore (Table.create_aligned ~headers:[ "a" ] ~aligns:[])));
  ]

(* --------------------------------------------------------- Atomic_array *)

let atomic_array_tests =
  [
    case "make initializes via f" (fun () ->
        let a = Atomic_array.make 5 (fun i -> i * i) in
        check Alcotest.int "len" 5 (Atomic_array.length a);
        for i = 0 to 4 do
          check Alcotest.int (string_of_int i) (i * i) (Atomic_array.get a i)
        done);
    case "set then get" (fun () ->
        let a = Atomic_array.make 3 (fun _ -> 0) in
        Atomic_array.set a 1 42;
        check Alcotest.int "get" 42 (Atomic_array.get a 1);
        check Alcotest.int "neighbours untouched" 0 (Atomic_array.get a 0));
    case "cas succeeds on expected value" (fun () ->
        let a = Atomic_array.make 1 (fun _ -> 7) in
        check Alcotest.bool "cas ok" true (Atomic_array.cas a 0 7 9);
        check Alcotest.int "value" 9 (Atomic_array.get a 0));
    case "cas fails on stale expected value" (fun () ->
        let a = Atomic_array.make 1 (fun _ -> 7) in
        check Alcotest.bool "cas fails" false (Atomic_array.cas a 0 8 9);
        check Alcotest.int "unchanged" 7 (Atomic_array.get a 0));
    case "snapshot copies" (fun () ->
        let a = Atomic_array.make 3 (fun i -> i) in
        let s = Atomic_array.snapshot a in
        Atomic_array.set a 0 99;
        check Alcotest.int "snapshot stale" 0 s.(0));
  ]

(* ---------------------------------------------------- Flat_atomic_array *)

let flat_atomic_array_tests =
  let module F = Repro_util.Flat_atomic_array in
  let both_modes name f =
    [
      case name (fun () -> f ~padded:false);
      case (name ^ " (padded)") (fun () -> f ~padded:true);
    ]
  in
  List.concat
    [
      both_modes "make initializes via f" (fun ~padded ->
          let a = F.make ~padded 5 (fun i -> i * i) in
          check Alcotest.int "len" 5 (F.length a);
          check Alcotest.bool "padded flag" padded (F.padded a);
          for i = 0 to 4 do
            check Alcotest.int (string_of_int i) (i * i) (F.get a i)
          done);
      both_modes "set then get leaves neighbours alone" (fun ~padded ->
          let a = F.make ~padded 3 (fun _ -> 0) in
          F.set a 1 42;
          check Alcotest.int "get" 42 (F.get a 1);
          check Alcotest.int "left untouched" 0 (F.get a 0);
          check Alcotest.int "right untouched" 0 (F.get a 2));
      both_modes "cas succeeds on expected value" (fun ~padded ->
          let a = F.make ~padded 2 (fun _ -> 7) in
          check Alcotest.bool "cas ok" true (F.cas a 0 7 9);
          check Alcotest.int "value" 9 (F.get a 0);
          check Alcotest.int "other cell" 7 (F.get a 1));
      both_modes "cas fails on stale expected value" (fun ~padded ->
          let a = F.make ~padded 1 (fun _ -> 7) in
          check Alcotest.bool "cas fails" false (F.cas a 0 8 9);
          check Alcotest.int "unchanged" 7 (F.get a 0));
      both_modes "cas distinguishes negative values" (fun ~padded ->
          let a = F.make ~padded 1 (fun _ -> -1) in
          check Alcotest.bool "wrong expected" false (F.cas a 0 1 5);
          check Alcotest.bool "right expected" true (F.cas a 0 (-1) min_int);
          check Alcotest.int "min_int round-trips" min_int (F.get a 0));
      both_modes "fetch_add returns previous and adds" (fun ~padded ->
          let a = F.make ~padded 2 (fun _ -> 10) in
          check Alcotest.int "prev" 10 (F.fetch_add a 0 5);
          check Alcotest.int "new" 15 (F.get a 0);
          check Alcotest.int "prev negative delta" 10 (F.fetch_add a 1 (-3));
          check Alcotest.int "subtracted" 7 (F.get a 1));
      both_modes "snapshot copies, later writes invisible" (fun ~padded ->
          let a = F.make ~padded 3 (fun i -> i) in
          let s = F.snapshot a in
          F.set a 0 99;
          check Alcotest.int "snapshot stale" 0 s.(0);
          check (Alcotest.array Alcotest.int) "contents" [| 0; 1; 2 |] s);
      both_modes "out-of-bounds rejected" (fun ~padded ->
          let a = F.make ~padded 4 (fun i -> i) in
          let expect_invalid f =
            match f () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument"
          in
          expect_invalid (fun () -> F.get a (-1));
          expect_invalid (fun () -> F.get a 4);
          expect_invalid (fun () -> F.set a 4 0);
          expect_invalid (fun () -> F.cas a (-1) 0 0);
          expect_invalid (fun () -> F.fetch_add a 4 1));
      both_modes "explicit-order primitives round-trip values" (fun ~padded ->
          let a = F.make ~padded 3 (fun i -> i * 10) in
          check Alcotest.int "get_acquire" 10 (F.get_acquire a 1);
          check Alcotest.int "get_relaxed" 20 (F.get_relaxed a 2);
          F.set_release a 0 min_int;
          check Alcotest.int "set_release visible" min_int (F.get a 0);
          check Alcotest.int "unsafe_get_acquire" min_int (F.unsafe_get_acquire a 0);
          check Alcotest.int "unsafe_get_relaxed" min_int (F.unsafe_get_relaxed a 0);
          F.unsafe_set_release a 0 max_int;
          check Alcotest.int "unsafe_set_release visible" max_int (F.get a 0));
      both_modes "cas_weak succeeds eventually, fails on real mismatch"
        (fun ~padded ->
          let a = F.make ~padded 2 (fun _ -> 7) in
          (* Weak CAS may fail spuriously, so success is only guaranteed
             across a retry loop; a genuine value mismatch must fail and
             leave the cell alone every time. *)
          let rec spin tries =
            if tries = 0 then Alcotest.fail "cas_weak never succeeded"
            else if not (F.cas_weak a 0 7 9) then spin (tries - 1)
          in
          spin 1000;
          check Alcotest.int "installed" 9 (F.get a 0);
          check Alcotest.int "neighbour untouched" 7 (F.get a 1);
          for _ = 1 to 100 do
            check Alcotest.bool "mismatch fails" false (F.cas_weak a 0 8 11)
          done;
          check Alcotest.int "unchanged" 9 (F.get a 0));
      both_modes "prefetch is a no-op hint, silent out of bounds"
        (fun ~padded ->
          let a = F.make ~padded 4 (fun i -> i) in
          F.prefetch a 0;
          F.prefetch a 3;
          F.unsafe_prefetch a 2;
          (* Checked prefetch must neither raise nor touch memory when the
             index is out of range — batch kernels prefetch ahead of
             bounds validation. *)
          F.prefetch a (-1);
          F.prefetch a 4;
          F.prefetch a max_int;
          for i = 0 to 3 do
            check Alcotest.int (string_of_int i) i (F.get a i)
          done);
      both_modes "explicit-order out-of-bounds rejected" (fun ~padded ->
          let a = F.make ~padded 4 (fun i -> i) in
          let expect_invalid f =
            match f () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument"
          in
          expect_invalid (fun () -> F.get_acquire a (-1));
          expect_invalid (fun () -> F.get_acquire a 4);
          expect_invalid (fun () -> F.get_relaxed a 4);
          expect_invalid (fun () -> F.set_release a 4 0);
          expect_invalid (fun () -> F.cas_weak a (-1) 0 0));
      both_modes "multi-domain cas_weak increments never lose updates"
        (fun ~padded ->
          let a = F.make ~padded 1 (fun _ -> 0) in
          let domains = 4 and per_domain = 5_000 in
          let worker () =
            for _ = 1 to per_domain do
              let rec retry () =
                let cur = F.get_relaxed a 0 in
                if not (F.cas_weak a 0 cur (cur + 1)) then retry ()
              in
              retry ()
            done
          in
          let hs = List.init domains (fun _ -> Domain.spawn worker) in
          List.iter Domain.join hs;
          check Alcotest.int "total" (domains * per_domain) (F.get a 0));
      both_modes "multi-domain release/acquire publication" (fun ~padded ->
          (* Writer fills a payload cell then publishes a generation number
             with set_release; the reader acquires the generation and must
             see the matching payload — the release/acquire pair the
             Growable priority array relies on. *)
          let a = F.make ~padded 2 (fun _ -> 0) in
          let rounds = 2_000 in
          let writer () =
            for g = 1 to rounds do
              F.set a 1 (g * 3);
              F.set_release a 0 g
            done
          in
          let fails = ref 0 in
          let reader () =
            for g = 1 to rounds do
              while F.get_acquire a 0 < g do
                Domain.cpu_relax ()
              done;
              (* payload is monotone, so whatever generation we acquired
                 the payload must be at least the published one *)
              if F.get_relaxed a 1 < g * 3 then incr fails
            done
          in
          let w = Domain.spawn writer and r = Domain.spawn reader in
          Domain.join w;
          Domain.join r;
          check Alcotest.int "stale payloads" 0 !fails);
      both_modes "multi-domain set_release/get_acquire/get_relaxed stress"
        (fun ~padded ->
          (* Two writers hammer disjoint cells with the weak-order
             primitives while two readers walk the array; every observed
             value must be one some writer actually wrote. *)
          let n = 64 in
          let a = F.make ~padded n (fun _ -> 0) in
          let iters = 20_000 in
          let writer base () =
            for k = 1 to iters do
              let i = base + (k mod (n / 2)) in
              F.set_release a i (((base + k) * 2) + 1)
            done
          in
          let bad = ref 0 in
          let reader () =
            for k = 1 to iters do
              let v = F.get_acquire a (k mod n) in
              let v' = F.get_relaxed a ((k * 7) mod n) in
              if v <> 0 && v land 1 = 0 then incr bad;
              if v' <> 0 && v' land 1 = 0 then incr bad
            done
          in
          let ds =
            [
              Domain.spawn (writer 0);
              Domain.spawn (writer (n / 2));
              Domain.spawn reader;
              Domain.spawn reader;
            ]
          in
          List.iter Domain.join ds;
          check Alcotest.int "torn or invented values" 0 !bad);
      [
        case "zero-length array is fine" (fun () ->
            let a = F.make 0 (fun _ -> assert false) in
            check Alcotest.int "len" 0 (F.length a);
            check Alcotest.int "snapshot" 0 (Array.length (F.snapshot a)));
        case "negative length rejected" (fun () ->
            match F.make (-1) (fun _ -> 0) with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument");
        case "large values survive the tagged representation" (fun () ->
            let probes = [ max_int; min_int; max_int - 1; min_int + 1; 0; -1 ] in
            let a = F.make (List.length probes) (fun _ -> 0) in
            List.iteri (fun i v -> F.set a i v) probes;
            List.iteri
              (fun i v -> check Alcotest.int (string_of_int i) v (F.get a i))
              probes);
      ];
    ]

(* ----------------------------------------------------------- ascii_plot *)

let ascii_plot_tests =
  [
    case "render produces a frame with markers" (fun () ->
        let out =
          Repro_util.Ascii_plot.render_single ~width:20 ~height:6
            [ (0., 0.); (1., 1.); (2., 4.) ]
        in
        check Alcotest.bool "has marker" true (String.contains out '*');
        check Alcotest.bool "has axis" true (String.contains out '+'));
    case "multiple series use their own markers" (fun () ->
        let out =
          Repro_util.Ascii_plot.render ~width:20 ~height:6
            [
              { Repro_util.Ascii_plot.label = 'a'; points = [ (0., 0.); (1., 1.) ] };
              { Repro_util.Ascii_plot.label = 'b'; points = [ (0., 1.); (1., 0.) ] };
            ]
        in
        check Alcotest.bool "a" true (String.contains out 'a');
        check Alcotest.bool "b" true (String.contains out 'b'));
    case "degenerate ranges do not crash" (fun () ->
        let out = Repro_util.Ascii_plot.render_single [ (1., 1.); (1., 1.) ] in
        check Alcotest.bool "nonempty" true (String.length out > 0));
    case "empty input rejected" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Ascii_plot.render: no points") (fun () ->
            ignore (Repro_util.Ascii_plot.render_single [])));
    case "tiny frame rejected" (fun () ->
        Alcotest.check_raises "tiny"
          (Invalid_argument "Ascii_plot.render: frame too small") (fun () ->
            ignore
              (Repro_util.Ascii_plot.render_single ~width:2 ~height:2 [ (0., 0.) ])));
    case "labels appear in output" (fun () ->
        let out =
          Repro_util.Ascii_plot.render_single ~x_label:"abscissa" ~y_label:"ordinate"
            [ (0., 0.); (5., 5.) ]
        in
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "x" true (contains out "abscissa");
        check Alcotest.bool "y" true (contains out "ordinate"));
  ]

let () =
  Alcotest.run "util"
    [
      ("rng", rng_tests);
      ("alpha", alpha_tests);
      ("rank", rank_tests);
      ("stats", stats_tests);
      ("histogram", histogram_tests);
      ("table", table_tests);
      ("atomic_array", atomic_array_tests);
      ("flat_atomic_array", flat_atomic_array_tests);
      ("ascii_plot", ascii_plot_tests);
    ]
