(* Tests for the bit-packed single-word (rank, parent, root-bit) layout
   (Dsu.Packed) and the first-class plan space (Dsu.Plan). *)

module Packed = Dsu.Packed
module Plan = Dsu.Plan
module Policy = Dsu.Find_policy
module Quick_find = Sequential.Quick_find
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

(* ----------------------------------------------------------- word layout *)

let word_tests =
  [
    case "field widths fit one 63-bit OCaml int" (fun () ->
        check Alcotest.bool "parent + rank + root bit <= 62" true
          (Packed.parent_bits + Packed.rank_bits + 1 <= 62);
        check Alcotest.int "max_nodes" (1 lsl Packed.parent_bits)
          Packed.max_nodes;
        check Alcotest.int "max_rank" ((1 lsl Packed.rank_bits) - 1)
          Packed.max_rank);
    case "root/child words pack and unpack exactly" (fun () ->
        let probes =
          [ (0, 0); (1, 1); (7, 41); (Packed.max_rank, Packed.max_nodes - 1) ]
        in
        List.iter
          (fun (rank, node) ->
            let w = Packed.root_word ~rank ~node in
            check Alcotest.bool "root flag" true (Packed.is_root_word w);
            check Alcotest.int "rank" rank (Packed.rank_of_word w);
            check Alcotest.int "parent field" node (Packed.parent_of_word w);
            let c = Packed.child_word ~rank ~parent:node in
            check Alcotest.bool "child not root" false (Packed.is_root_word c);
            check Alcotest.int "child rank" rank (Packed.rank_of_word c);
            check Alcotest.int "child parent" node (Packed.parent_of_word c))
          probes);
    case "init_word is a rank-0 self-root" (fun () ->
        let w = Packed.init_word 19 in
        check Alcotest.bool "root" true (Packed.is_root_word w);
        check Alcotest.int "rank 0" 0 (Packed.rank_of_word w);
        check Alcotest.int "parent self" 19 (Packed.parent_of_word w));
    case "create bounds-checks n" (fun () ->
        List.iter
          (fun n ->
            match Packed.Native.create n with
            | _ -> Alcotest.fail (Printf.sprintf "accepted n=%d" n)
            | exception Invalid_argument _ -> ())
          [ 0; -1; Packed.max_nodes + 1 ]);
  ]

(* -------------------------------------------------------------- semantics *)

let oracle_mix ~policy ~n ~ops ~seed =
  let d = Packed.Native.create ~policy n in
  let q = Quick_find.create n in
  let rng = Rng.create seed in
  for _ = 1 to ops do
    let x = Rng.int rng n and y = Rng.int rng n in
    if Rng.bool rng then begin
      Packed.Native.unite d x y;
      Quick_find.unite q x y
    end
    else
      check Alcotest.bool "query" (Quick_find.same_set q x y)
        (Packed.Native.same_set d x y)
  done;
  check Alcotest.int "count" (Quick_find.count_sets q)
    (Packed.Native.count_sets d);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "invariants" []
    (Packed.Native.invariant_violations d)

let native_tests =
  [
    case "singletons at creation" (fun () ->
        let d = Packed.Native.create 8 in
        check Alcotest.int "count" 8 (Packed.Native.count_sets d);
        check Alcotest.bool "apart" false (Packed.Native.same_set d 0 1);
        check Alcotest.bool "root" true (Packed.Native.is_root d 5);
        check Alcotest.int "rank 0" 0 (Packed.Native.rank_of d 0));
    case "unite and transitivity" (fun () ->
        let d = Packed.Native.create 8 in
        Packed.Native.unite d 0 1;
        Packed.Native.unite d 1 2;
        check Alcotest.bool "0~2" true (Packed.Native.same_set d 0 2);
        check Alcotest.int "count" 6 (Packed.Native.count_sets d));
    case "rank tie promotes the winner" (fun () ->
        let d = Packed.Native.create 4 in
        Packed.Native.unite d 0 1;
        let root = Packed.Native.find d 0 in
        check Alcotest.int "winner rank" 1 (Packed.Native.rank_of d root));
    case "matches quick-find oracle under every policy" (fun () ->
        List.iter
          (fun policy -> oracle_mix ~policy ~n:64 ~ops:800 ~seed:7)
          Policy.all);
    case "ranks are bounded by lg n" (fun () ->
        let n = 256 in
        let d = Packed.Native.create n in
        let rng = Rng.create 3 in
        for _ = 1 to 4 * n do
          Packed.Native.unite d (Rng.int rng n) (Rng.int rng n)
        done;
        for i = 0 to n - 1 do
          check Alcotest.bool (string_of_int i) true
            (Packed.Native.rank_of d i <= 8)
        done);
    case "adversarial chain stays logarithmic" (fun () ->
        let n = 1 lsl 10 in
        let d = Packed.Native.create ~policy:Policy.No_compaction n in
        for i = 0 to n - 2 do
          Packed.Native.unite d i (i + 1)
        done;
        let max_depth = ref 0 in
        for i = 0 to n - 1 do
          let u = ref i and depth = ref 0 in
          while Packed.Native.parent_of d !u <> !u do
            u := Packed.Native.parent_of d !u;
            incr depth
          done;
          max_depth := max !max_depth !depth
        done;
        check Alcotest.bool "height <= lg n" true (!max_depth <= 10));
    case "out-of-range rejected" (fun () ->
        let d = Packed.Native.create 4 in
        match Packed.Native.find d 4 with
        | _ -> Alcotest.fail "accepted an out-of-range node"
        | exception Invalid_argument _ -> ());
    case "stats count links" (fun () ->
        let d = Packed.Native.create ~collect_stats:true 16 in
        for i = 0 to 14 do
          Packed.Native.unite d i (i + 1)
        done;
        check Alcotest.int "links" 15 (Packed.Native.stats d).Dsu.Stats.links);
    case "batch kernels agree with the per-op loop" (fun () ->
        let n = 512 in
        let rng = Rng.create 23 in
        let count = 2 * n in
        let xs = Array.init count (fun _ -> Rng.int rng n) in
        let ys = Array.init count (fun _ -> Rng.int rng n) in
        let a = Packed.Native.create n and b = Packed.Native.create n in
        Packed.Native.unite_batch a xs ys;
        Array.iteri (fun k x -> Packed.Native.unite b x ys.(k)) xs;
        let qx = Array.init 256 (fun _ -> Rng.int rng n) in
        let qy = Array.init 256 (fun _ -> Rng.int rng n) in
        let ra = Packed.Native.same_set_batch a qx qy in
        Array.iteri
          (fun k x ->
            check Alcotest.bool
              (Printf.sprintf "query %d" k)
              (Packed.Native.same_set b x qy.(k))
              ra.(k))
          qx;
        check Alcotest.int "same partition" (Packed.Native.count_sets b)
          (Packed.Native.count_sets a));
    case "parallel domains agree with oracle" (fun () ->
        let n = 300 in
        let d = Packed.Native.create n in
        let per_domain = 1500 in
        let worker k () =
          let rng = Rng.create (400 + k) in
          for _ = 1 to per_domain do
            Packed.Native.unite d (Rng.int rng n) (Rng.int rng n)
          done
        in
        let handles = List.init 4 (fun k -> Domain.spawn (worker k)) in
        List.iter Domain.join handles;
        let q = Quick_find.create n in
        for k = 0 to 3 do
          let rng = Rng.create (400 + k) in
          for _ = 1 to per_domain do
            Quick_find.unite q (Rng.int rng n) (Rng.int rng n)
          done
        done;
        check Alcotest.int "count" (Quick_find.count_sets q)
          (Packed.Native.count_sets d);
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
          "invariants hold after concurrency" []
          (Packed.Native.invariant_violations d));
    case "of_snapshot round-trips and validates" (fun () ->
        let n = 64 in
        let d = Packed.Native.create n in
        let rng = Rng.create 11 in
        for _ = 1 to 200 do
          Packed.Native.unite d (Rng.int rng n) (Rng.int rng n)
        done;
        let parents = Packed.Native.parents_snapshot d in
        let ranks = Packed.Native.ranks_snapshot d in
        let d' = Packed.Native.of_snapshot ~parents ~ranks () in
        for x = 0 to n - 1 do
          check Alcotest.bool (string_of_int x)
            (Packed.Native.same_set d 0 x)
            (Packed.Native.same_set d' 0 x)
        done;
        (* and the constructor rejects garbage *)
        let bad_parent = Array.copy parents in
        bad_parent.(0) <- n;
        (match Packed.Native.of_snapshot ~parents:bad_parent ~ranks () with
        | _ -> Alcotest.fail "accepted an out-of-range parent"
        | exception Invalid_argument _ -> ());
        let bad_rank = Array.copy ranks in
        bad_rank.(0) <- Packed.max_rank + 1;
        match Packed.Native.of_snapshot ~parents ~ranks:bad_rank () with
        | _ -> Alcotest.fail "accepted an oversized rank"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ plans *)

let plan_tests =
  [
    case "default plan is valid and spells itself" (fun () ->
        check Alcotest.bool "valid" true (Plan.is_valid Plan.default);
        check Alcotest.string "spec" "rand:two-try:relaxed-reads:on:flat"
          (Plan.to_string Plan.default));
    case "of_string round-trips every registry point" (fun () ->
        check Alcotest.bool "registry non-trivial" true
          (List.length Plan.registry > 20);
        List.iter
          (fun p ->
            check Alcotest.bool (Plan.to_string p) true (Plan.is_valid p);
            match Plan.of_string (Plan.to_string p) with
            | Ok p' ->
              check Alcotest.bool "equal after round-trip" true (Plan.equal p p')
            | Error e -> Alcotest.fail e)
          Plan.registry);
    case "candidates are valid and include the packed contenders" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.bool (Plan.to_string p) true (Plan.is_valid p))
          Plan.candidates;
        check Alcotest.bool "default present" true
          (List.exists (Plan.equal Plan.default) Plan.candidates);
        check Alcotest.bool "a packed plan present" true
          (List.exists (fun p -> p.Plan.layout = Plan.Packed) Plan.candidates));
    case "invalid combinations are rejected with sayings" (fun () ->
        let rejected s =
          match Plan.of_string s with Ok _ -> false | Error _ -> true
        in
        check Alcotest.bool "by-size linking" true
          (rejected "size:two-try:relaxed-reads:on:flat");
        check Alcotest.bool "random linking on packed" true
          (rejected "rand:two-try:relaxed-reads:on:packed");
        check Alcotest.bool "rank linking off packed" true
          (rejected "rank:two-try:relaxed-reads:on:flat");
        check Alcotest.bool "boxed with an order knob" true
          (rejected "rand:two-try:relaxed-reads:on:boxed");
        check Alcotest.bool "boxed spelled seq-cst is fine" false
          (rejected "rand:two-try:seq-cst:on:boxed"));
    case "malformed specs name the bad field" (fun () ->
        let err s =
          match Plan.of_string s with
          | Error e -> e
          | Ok _ -> Alcotest.fail ("accepted " ^ s)
        in
        check Alcotest.bool "too few fields" true
          (String.length (err "rand:two-try") > 0);
        check Alcotest.bool "bad compaction" true
          (String.length (err "rand:sideways:relaxed-reads:on:flat") > 0);
        check Alcotest.bool "bad backoff" true
          (String.length (err "rand:two-try:relaxed-reads:maybe:flat") > 0));
    case "every valid plan runs through the scalability harness" (fun () ->
        (* one cheap point per plan family: flat default, boxed, packed *)
        List.iter
          (fun spec ->
            match Plan.of_string spec with
            | Error e -> Alcotest.fail e
            | Ok plan ->
              let config =
                {
                  Harness.Scalability.default_config with
                  Harness.Scalability.n = 128;
                  total_ops = 1_000;
                }
              in
              let p =
                Harness.Scalability.run_plan_point ~config ~plan ~domains:1 ()
              in
              check Alcotest.bool (spec ^ " clean") true
                (p.Harness.Scalability.failures = []))
          [
            "rand:two-try:relaxed-reads:on:flat";
            "rand:halving:seq-cst:off:flat-padded";
            "rand:compression:seq-cst:on:boxed";
            "rank:one-try:acquire:on:packed";
          ]);
  ]

let () =
  Alcotest.run "packed_dsu"
    [ ("word", word_tests); ("native", native_tests); ("plan", plan_tests) ]
