(* Tests for the harness: forest analysis, the measurement layer, and the
   experiment registry. *)

module Forest = Harness.Forest
module Measure = Harness.Measure
module Experiment = Harness.Experiment
module Registry = Harness.Registry
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let forest_tests =
  [
    case "of_links builds the forest" (fun () ->
        let f = Forest.of_links ~n:5 [ (0, 1); (1, 2); (3, 2) ] in
        check Alcotest.int "parent 0" 1 (Forest.parent f 0);
        check Alcotest.bool "2 is root" true (Forest.is_root f 2);
        check Alcotest.bool "4 is root" true (Forest.is_root f 4);
        check Alcotest.int "n" 5 (Forest.n f));
    case "depths and height" (fun () ->
        let f = Forest.of_links ~n:5 [ (0, 1); (1, 2); (3, 2) ] in
        check Alcotest.(array int) "depths" [| 2; 1; 0; 1; 0 |] (Forest.depths f);
        check Alcotest.int "height" 2 (Forest.height f);
        check (Alcotest.float 1e-9) "avg" 0.8 (Forest.avg_depth f));
    case "ancestors nearest first" (fun () ->
        let f = Forest.of_links ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
        check Alcotest.(list int) "ancestors 0" [ 1; 2; 3 ] (Forest.ancestors f 0);
        check Alcotest.(list int) "ancestors 3" [] (Forest.ancestors f 3));
    case "linking a node twice rejected" (fun () ->
        Alcotest.check_raises "twice"
          (Invalid_argument "Forest.of_links: node linked twice") (fun () ->
            ignore (Forest.of_links ~n:3 [ (0, 1); (0, 2) ])));
    case "cycle detection in of_parents" (fun () ->
        let f = Forest.of_parents [| 1; 0 |] in
        Alcotest.check_raises "cycle" (Invalid_argument "Forest.depths: cycle detected")
          (fun () -> ignore (Forest.depths f)));
    case "of_parents copies its input" (fun () ->
        let parents = [| 0; 0 |] in
        let f = Forest.of_parents parents in
        parents.(1) <- 1;
        check Alcotest.int "unaffected" 0 (Forest.parent f 1));
    case "depth_histogram totals n" (fun () ->
        let f = Forest.of_links ~n:6 [ (0, 1); (2, 1); (3, 1) ] in
        let h = Forest.depth_histogram f in
        check Alcotest.int "total" 6 (Repro_util.Histogram.total h);
        check Alcotest.int "depth 0 count" 3 (Repro_util.Histogram.count h 0);
        check Alcotest.int "depth 1 count" 3 (Repro_util.Histogram.count h 1));
    case "singleton forest" (fun () ->
        let f = Forest.of_links ~n:1 [] in
        check Alcotest.int "height" 0 (Forest.height f);
        check (Alcotest.float 1e-9) "avg" 0. (Forest.avg_depth f));
  ]

let measure_tests =
  [
    case "run_sim basic accounting" (fun () ->
        let ops =
          [| [ Workload.Op.Unite (0, 1); Workload.Op.Same_set (0, 1) ];
             [ Workload.Op.Unite (2, 3) ] |]
        in
        let r = Measure.run_sim ~n:8 ~seed:3 ~ops () in
        check Alcotest.int "ops completed" 3 (Array.length r.Measure.op_costs);
        check Alcotest.bool "steps positive" true (r.Measure.total_steps > 0);
        check Alcotest.int "steps sum" r.Measure.total_steps
          (Array.fold_left ( + ) 0 r.Measure.steps_per_process);
        check Alcotest.int "links" 2 (List.length r.Measure.links);
        check Alcotest.bool "work per op" true (Measure.work_per_op r > 0.));
    case "run_sim respects init_parents" (fun () ->
        (* Warm-start: all nodes already point at node 3 (give node 3 the
           top id by fixing ids).  A find from 0 is then one step shorter
           than in a cold chain. *)
        let ops = [| [ Workload.Op.Find 0 ] |] in
        let r_cold =
          Measure.run_sim ~init_parents:[| 1; 2; 3; 3 |] ~n:4 ~seed:5 ~ops ()
        in
        let r_warm =
          Measure.run_sim ~init_parents:[| 3; 3; 3; 3 |] ~n:4 ~seed:5 ~ops ()
        in
        check Alcotest.bool "warm cheaper" true
          (r_warm.Measure.total_steps < r_cold.Measure.total_steps));
    case "run_sim validates init_parents length" (fun () ->
        Alcotest.check_raises "len"
          (Invalid_argument "Measure.run_sim: init_parents length mismatch")
          (fun () ->
            ignore (Measure.run_sim ~init_parents:[| 0 |] ~n:2 ~seed:1 ~ops:[| [] |] ())));
    case "stats snapshot consistent with oracle" (fun () ->
        let n = 32 in
        let rng = Rng.create 21 in
        let ops_list = Workload.Random_mix.random_pairs ~rng ~n ~m:50 in
        let ops = Workload.Op.round_robin ops_list ~p:2 in
        let r = Measure.run_sim ~n ~seed:9 ~ops () in
        let q = Sequential.Quick_find.create n in
        Workload.Op.run_quick_find q ops_list;
        check Alcotest.int "links" (n - Sequential.Quick_find.count_sets q)
          r.Measure.stats.Dsu.Stats.links);
    case "seq_work counters" (fun () ->
        let ops = [ Workload.Op.Unite (0, 1); Workload.Op.Same_set (0, 1) ] in
        let c =
          Measure.seq_work ~linking:Sequential.Seq_dsu.By_rank
            ~compaction:Sequential.Seq_dsu.Splitting ~n:4 ~ops ()
        in
        check Alcotest.int "links" 1 c.Sequential.Seq_dsu.links;
        check Alcotest.int "unites" 1 c.Sequential.Seq_dsu.unites);
    case "mean_int" (fun () ->
        check (Alcotest.float 1e-9) "mean" 2. (Measure.mean_int [| 1; 2; 3 |]);
        check (Alcotest.float 1e-9) "empty" 0. (Measure.mean_int [||]));
  ]

let registry_tests =
  [
    case "all ids are unique" (fun () ->
        let ids = List.map (fun e -> e.Experiment.id) Registry.all in
        check Alcotest.int "unique" (List.length ids)
          (List.length (List.sort_uniq compare ids)));
    case "eighteen experiments registered" (fun () ->
        check Alcotest.int "count" 18 (List.length Registry.all));
    case "find locates by id" (fun () ->
        (match Registry.find "e4" with
        | Some e -> check Alcotest.string "id" "e4" e.Experiment.id
        | None -> Alcotest.fail "e4 missing");
        check Alcotest.bool "unknown" true (Registry.find "nope" = None));
    case "every experiment has a claim" (fun () ->
        List.iter
          (fun e ->
            check Alcotest.bool e.Experiment.id true
              (String.length e.Experiment.claim > 10))
          Registry.all);
    case "header renders" (fun () ->
        match Registry.find "e1" with
        | Some e ->
          let buf = Buffer.create 128 in
          Experiment.header (Format.formatter_of_buffer buf) e;
          check Alcotest.bool "nonempty" true (Buffer.length buf > 0)
        | None -> Alcotest.fail "e1 missing");
  ]

let () =
  Alcotest.run "harness"
    [
      ("forest", forest_tests);
      ("measure", measure_tests);
      ("registry", registry_tests);
    ]
