(* Tests for the harness: forest analysis, the measurement layer, and the
   experiment registry. *)

module Forest = Harness.Forest
module Measure = Harness.Measure
module Experiment = Harness.Experiment
module Registry = Harness.Registry
module Rng = Repro_util.Rng

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f

let forest_tests =
  [
    case "of_links builds the forest" (fun () ->
        let f = Forest.of_links ~n:5 [ (0, 1); (1, 2); (3, 2) ] in
        check Alcotest.int "parent 0" 1 (Forest.parent f 0);
        check Alcotest.bool "2 is root" true (Forest.is_root f 2);
        check Alcotest.bool "4 is root" true (Forest.is_root f 4);
        check Alcotest.int "n" 5 (Forest.n f));
    case "depths and height" (fun () ->
        let f = Forest.of_links ~n:5 [ (0, 1); (1, 2); (3, 2) ] in
        check Alcotest.(array int) "depths" [| 2; 1; 0; 1; 0 |] (Forest.depths f);
        check Alcotest.int "height" 2 (Forest.height f);
        check (Alcotest.float 1e-9) "avg" 0.8 (Forest.avg_depth f));
    case "ancestors nearest first" (fun () ->
        let f = Forest.of_links ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
        check Alcotest.(list int) "ancestors 0" [ 1; 2; 3 ] (Forest.ancestors f 0);
        check Alcotest.(list int) "ancestors 3" [] (Forest.ancestors f 3));
    case "linking a node twice rejected" (fun () ->
        Alcotest.check_raises "twice"
          (Invalid_argument "Forest.of_links: node linked twice") (fun () ->
            ignore (Forest.of_links ~n:3 [ (0, 1); (0, 2) ])));
    case "cycle detection in of_parents" (fun () ->
        let f = Forest.of_parents [| 1; 0 |] in
        Alcotest.check_raises "cycle" (Invalid_argument "Forest.depths: cycle detected")
          (fun () -> ignore (Forest.depths f)));
    case "of_parents copies its input" (fun () ->
        let parents = [| 0; 0 |] in
        let f = Forest.of_parents parents in
        parents.(1) <- 1;
        check Alcotest.int "unaffected" 0 (Forest.parent f 1));
    case "depth_histogram totals n" (fun () ->
        let f = Forest.of_links ~n:6 [ (0, 1); (2, 1); (3, 1) ] in
        let h = Forest.depth_histogram f in
        check Alcotest.int "total" 6 (Repro_util.Histogram.total h);
        check Alcotest.int "depth 0 count" 3 (Repro_util.Histogram.count h 0);
        check Alcotest.int "depth 1 count" 3 (Repro_util.Histogram.count h 1));
    case "singleton forest" (fun () ->
        let f = Forest.of_links ~n:1 [] in
        check Alcotest.int "height" 0 (Forest.height f);
        check (Alcotest.float 1e-9) "avg" 0. (Forest.avg_depth f));
  ]

let measure_tests =
  [
    case "run_sim basic accounting" (fun () ->
        let ops =
          [| [ Workload.Op.Unite (0, 1); Workload.Op.Same_set (0, 1) ];
             [ Workload.Op.Unite (2, 3) ] |]
        in
        let r = Measure.run_sim ~n:8 ~seed:3 ~ops () in
        check Alcotest.int "ops completed" 3 (Array.length r.Measure.op_costs);
        check Alcotest.bool "steps positive" true (r.Measure.total_steps > 0);
        check Alcotest.int "steps sum" r.Measure.total_steps
          (Array.fold_left ( + ) 0 r.Measure.steps_per_process);
        check Alcotest.int "links" 2 (List.length r.Measure.links);
        check Alcotest.bool "work per op" true (Measure.work_per_op r > 0.));
    case "run_sim respects init_parents" (fun () ->
        (* Warm-start: all nodes already point at node 3 (give node 3 the
           top id by fixing ids).  A find from 0 is then one step shorter
           than in a cold chain. *)
        let ops = [| [ Workload.Op.Find 0 ] |] in
        let r_cold =
          Measure.run_sim ~init_parents:[| 1; 2; 3; 3 |] ~n:4 ~seed:5 ~ops ()
        in
        let r_warm =
          Measure.run_sim ~init_parents:[| 3; 3; 3; 3 |] ~n:4 ~seed:5 ~ops ()
        in
        check Alcotest.bool "warm cheaper" true
          (r_warm.Measure.total_steps < r_cold.Measure.total_steps));
    case "run_sim validates init_parents length" (fun () ->
        Alcotest.check_raises "len"
          (Invalid_argument "Measure.run_sim: init_parents length mismatch")
          (fun () ->
            ignore (Measure.run_sim ~init_parents:[| 0 |] ~n:2 ~seed:1 ~ops:[| [] |] ())));
    case "stats snapshot consistent with oracle" (fun () ->
        let n = 32 in
        let rng = Rng.create 21 in
        let ops_list = Workload.Random_mix.random_pairs ~rng ~n ~m:50 in
        let ops = Workload.Op.round_robin ops_list ~p:2 in
        let r = Measure.run_sim ~n ~seed:9 ~ops () in
        let q = Sequential.Quick_find.create n in
        Workload.Op.run_quick_find q ops_list;
        check Alcotest.int "links" (n - Sequential.Quick_find.count_sets q)
          r.Measure.stats.Dsu.Stats.links);
    case "seq_work counters" (fun () ->
        let ops = [ Workload.Op.Unite (0, 1); Workload.Op.Same_set (0, 1) ] in
        let c =
          Measure.seq_work ~linking:Sequential.Seq_dsu.By_rank
            ~compaction:Sequential.Seq_dsu.Splitting ~n:4 ~ops ()
        in
        check Alcotest.int "links" 1 c.Sequential.Seq_dsu.links;
        check Alcotest.int "unites" 1 c.Sequential.Seq_dsu.unites);
    case "mean_int" (fun () ->
        check (Alcotest.float 1e-9) "mean" 2. (Measure.mean_int [| 1; 2; 3 |]);
        check (Alcotest.float 1e-9) "empty" 0. (Measure.mean_int [||]));
  ]

let registry_tests =
  [
    case "all ids are unique" (fun () ->
        let ids = List.map (fun e -> e.Experiment.id) Registry.all in
        check Alcotest.int "unique" (List.length ids)
          (List.length (List.sort_uniq compare ids)));
    case "eighteen experiments registered" (fun () ->
        check Alcotest.int "count" 18 (List.length Registry.all));
    case "find locates by id" (fun () ->
        (match Registry.find "e4" with
        | Some e -> check Alcotest.string "id" "e4" e.Experiment.id
        | None -> Alcotest.fail "e4 missing");
        check Alcotest.bool "unknown" true (Registry.find "nope" = None));
    case "every experiment has a claim" (fun () ->
        List.iter
          (fun e ->
            check Alcotest.bool e.Experiment.id true
              (String.length e.Experiment.claim > 10))
          Registry.all);
    case "header renders" (fun () ->
        match Registry.find "e1" with
        | Some e ->
          let buf = Buffer.create 128 in
          Experiment.header (Format.formatter_of_buffer buf) e;
          check Alcotest.bool "nonempty" true (Buffer.length buf > 0)
        | None -> Alcotest.fail "e1 missing");
  ]

(* ------------------------------------------------------------- latency *)

module Latency = Harness.Latency
module Perfdiff = Harness.Perfdiff
module Json = Repro_obs.Json

(* Integral floats serialize as "100" and parse back as [Json.Int]. *)
let json_num = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let latency_tests =
  [
    case "shape strings round-trip" (fun () ->
        List.iter
          (fun (s, shape) ->
            check Alcotest.bool s true (Latency.shape_of_string s = Some shape);
            check Alcotest.string "to_string" s
              (Latency.shape_to_string shape))
          [
            ("fixed", Latency.Fixed);
            ("poisson", Latency.Poisson);
            ("bursty:4", Latency.Bursty 4);
          ];
        check Alcotest.bool "bare bursty defaults" true
          (Latency.shape_of_string "bursty" = Some (Latency.Bursty 16));
        check Alcotest.bool "zero burst rejected" true
          (Latency.shape_of_string "bursty:0" = None);
        check Alcotest.bool "junk rejected" true
          (Latency.shape_of_string "open-loop" = None));
    case "run_point validates its arguments" (fun () ->
        let config = Latency.default_config in
        check Alcotest.bool "rate 0 rejected" true
          (try
             ignore (Latency.run_point ~config ~rate:0.0 ());
             false
           with Invalid_argument _ -> true);
        check Alcotest.bool "0 domains rejected" true
          (try
             ignore
               (Latency.run_point ~config:{ config with domains = 0 }
                  ~rate:1000.0 ());
             false
           with Invalid_argument _ -> true));
    case "a modest fixed-rate point completes and keeps its books" (fun () ->
        let config =
          {
            Latency.default_config with
            n = 256;
            domains = 1;
            ops = 400;
            shape = Latency.Fixed;
            reservoir = 64;
          }
        in
        let p = Latency.run_point ~config ~rate:20_000.0 () in
        check Alcotest.int "every op completed" p.Latency.target_ops
          p.Latency.completed_ops;
        check Alcotest.int "latency count" 400 p.Latency.latency.Repro_obs.Hdr.count;
        check Alcotest.int "service count" 400 p.Latency.service.Repro_obs.Hdr.count;
        check Alcotest.bool "duration positive" true (p.Latency.duration_s > 0.);
        check Alcotest.int "reservoir capped" 64
          (Array.length p.Latency.samples);
        let sorted = Array.copy p.Latency.samples in
        Array.sort compare sorted;
        check Alcotest.(array int) "samples sorted" sorted p.Latency.samples;
        (* Open-loop latency includes the wait for the slot, so it
           dominates pure service time everywhere. *)
        check Alcotest.bool "latency p99 >= service p99" true
          (Repro_obs.Hdr.quantile p.Latency.latency 0.99
          >= Repro_obs.Hdr.quantile p.Latency.service 0.99));
    case "bursty arrivals run to completion" (fun () ->
        let config =
          {
            Latency.default_config with
            n = 128;
            domains = 1;
            ops = 200;
            shape = Latency.Bursty 8;
            reservoir = 32;
          }
        in
        let p = Latency.run_point ~config ~rate:50_000.0 () in
        check Alcotest.int "completed" 200 p.Latency.completed_ops);
    case "open-loop accounting exposes the stall closed-loop hides"
      (fun () ->
        (* One generator at 50k ops/s; the server freezes for 20ms mid-run.
           Intended-start accounting bills the ~1000 queued arrivals for
           their wait, so the open-loop tail explodes; service time
           (completion - actual start: what a closed-loop harness reports)
           stays flat except for the one stalled call.  This asymmetry IS
           coordinated omission. *)
        let stall_ns = 20_000_000 in
        let config =
          {
            Latency.default_config with
            n = 1024;
            domains = 1;
            ops = 3_000;
            shape = Latency.Fixed;
            reservoir = 128;
          }
        in
        let stall ~domain:_ ~index = if index = 1_500 then stall_ns else 0 in
        let p = Latency.run_point ~stall ~config ~rate:50_000.0 () in
        let lat_p999 = Repro_obs.Hdr.quantile p.Latency.latency 0.999 in
        let srv_p999 = Repro_obs.Hdr.quantile p.Latency.service 0.999 in
        check Alcotest.bool
          (Printf.sprintf "open-loop p999 (%d ns) sees the stall" lat_p999)
          true
          (lat_p999 >= stall_ns / 4);
        check Alcotest.bool
          (Printf.sprintf "closed-loop p999 (%d ns) hides it (open %d ns)"
             srv_p999 lat_p999)
          true
          (lat_p999 > 5 * srv_p999);
        check Alcotest.bool "the stalled call itself is the service max" true
          (p.Latency.service.Repro_obs.Hdr.max >= stall_ns);
        check Alcotest.bool "scheduling lag recorded" true
          (p.Latency.max_lag_ns >= stall_ns / 4));
    case "sweep locates the saturation knee" (fun () ->
        let config =
          {
            Latency.default_config with
            n = 256;
            domains = 1;
            ops = 400;
            shape = Latency.Fixed;
            reservoir = 32;
          }
        in
        (* 20k/s is trivially sustainable; 50M/s is beyond any single
           domain (the op itself costs more than 20ns). *)
        let points =
          Latency.sweep ~config ~rates:[ 20_000.0; 50_000_000.0 ] ()
        in
        (match points with
        | [ easy; impossible ] ->
          check Alcotest.bool "low rate keeps up" false easy.Latency.saturated;
          check Alcotest.bool "high rate saturates" true
            impossible.Latency.saturated
        | _ -> Alcotest.fail "expected two points");
        check Alcotest.bool "knee is the sustainable rate" true
          (Latency.knee points = Some 20_000.0);
        check Alcotest.bool "all saturated means no knee" true
          (Latency.knee
             (List.filter (fun p -> p.Latency.saturated) points)
          = None);
        (* The dsu-latency/v1 document round-trips through the parser. *)
        let j =
          Json.parse_exn (Json.to_string (Latency.to_json config points))
        in
        check Alcotest.bool "schema" true
          (Json.member "schema" j = Some (Json.String "dsu-latency/v1"));
        (match Json.member "points" j with
        | Some (Json.List [ p1; _ ]) ->
          (match Json.member "latency" p1 with
          | Some lat ->
            List.iter
              (fun key ->
                check Alcotest.bool (key ^ " present") true
                  (Json.member key lat <> None))
              [ "count"; "mean_ns"; "min_ns"; "p50_ns"; "p99_ns"; "p999_ns";
                "max_ns" ]
          | None -> Alcotest.fail "latency object missing");
          check Alcotest.bool "exact samples exported" true
            (match Json.member "samples_ns" p1 with
            | Some (Json.List l) -> List.length l > 0
            | _ -> false)
        | _ -> Alcotest.fail "expected two JSON points");
        check (Alcotest.option (Alcotest.float 1e-9)) "knee exported"
          (Some 20_000.0)
          (json_num (Json.member "knee_rate" j)));
  ]

(* ------------------------------------------------------------ perfdiff *)

let bechamel_doc entries =
  Printf.sprintf {|{"results":[%s]}|}
    (String.concat ","
       (List.map
          (fun (name, ns) ->
            Printf.sprintf {|{"name":"%s","ns_per_run":%f}|} name ns)
          entries))

let latency_doc points =
  Printf.sprintf {|{"schema":"dsu-latency/v1","points":[%s]}|}
    (String.concat ","
       (List.map
          (fun (rate, achieved, p99, p999) ->
            Printf.sprintf
              {|{"offered_rate":%f,"achieved_rate":%f,"latency":{"p99_ns":%d,"p999_ns":%d}}|}
              rate achieved p99 p999)
          points))

let diff_ok ?threshold_pct ~base ~current () =
  match Perfdiff.diff_strings ?threshold_pct ~base ~current () with
  | Ok r -> r
  | Error e -> Alcotest.fail ("unexpected perfdiff error: " ^ e)

let perfdiff_tests =
  [
    case "self-diff is clean" (fun () ->
        let doc = bechamel_doc [ ("a", 100.0); ("b", 250.0) ] in
        let r = diff_ok ~base:doc ~current:doc () in
        check Alcotest.string "kind" "bechamel" r.Perfdiff.kind;
        check Alcotest.int "compared" 2 (List.length r.Perfdiff.rows);
        check Alcotest.int "regressions" 0 (List.length r.Perfdiff.regressions);
        check Alcotest.int "improvements" 0
          (List.length r.Perfdiff.improvements));
    case "lower-better: slower is a regression, faster an improvement"
      (fun () ->
        let base = bechamel_doc [ ("slow", 100.0); ("fast", 100.0) ] in
        let current = bechamel_doc [ ("slow", 150.0); ("fast", 50.0) ] in
        let r = diff_ok ~base ~current () in
        (match r.Perfdiff.regressions with
        | [ row ] ->
          check Alcotest.string "key" "slow" row.Perfdiff.key;
          check (Alcotest.float 1e-6) "delta" 50.0 row.Perfdiff.delta_pct
        | _ -> Alcotest.fail "expected one regression");
        match r.Perfdiff.improvements with
        | [ row ] -> check Alcotest.string "key" "fast" row.Perfdiff.key
        | _ -> Alcotest.fail "expected one improvement");
    case "deltas inside the noise threshold are ignored" (fun () ->
        let base = bechamel_doc [ ("a", 100.0) ] in
        let current = bechamel_doc [ ("a", 105.0) ] in
        let r = diff_ok ~base ~current () in
        check Alcotest.int "no regressions at 10%" 0
          (List.length r.Perfdiff.regressions);
        let tight = diff_ok ~threshold_pct:2.0 ~base ~current () in
        check Alcotest.int "regression at 2%" 1
          (List.length tight.Perfdiff.regressions));
    case "higher-better: a throughput drop is the regression" (fun () ->
        let doc mops =
          Printf.sprintf
            {|{"schema":"dsu-scalability/v1","points":[{"layout":"native","domains":4,"mops_per_sec":%f}]}|}
            mops
        in
        let r = diff_ok ~base:(doc 10.0) ~current:(doc 5.0) () in
        check Alcotest.bool "kind" true
          (String.length r.Perfdiff.kind >= 15
          && String.sub r.Perfdiff.kind 0 15 = "dsu-scalability");
        (match r.Perfdiff.regressions with
        | [ row ] ->
          check Alcotest.string "metric" "mops_per_sec" row.Perfdiff.metric;
          check Alcotest.bool "keyed by configuration" true
            (row.Perfdiff.key = "layout=native domains=4")
        | _ -> Alcotest.fail "expected one regression");
        let up = diff_ok ~base:(doc 5.0) ~current:(doc 10.0) () in
        check Alcotest.int "improvement the other way" 1
          (List.length up.Perfdiff.improvements));
    case "latency documents diff quantiles and achieved rate" (fun () ->
        let base = latency_doc [ (1000.0, 990.0, 100, 200) ] in
        let current = latency_doc [ (1000.0, 500.0, 300, 600) ] in
        let r = diff_ok ~base ~current () in
        let metrics =
          List.map (fun row -> row.Perfdiff.metric) r.Perfdiff.regressions
          |> List.sort compare
        in
        (* '9' sorts before '_', so p999 precedes p99 lexicographically *)
        check
          (Alcotest.list Alcotest.string)
          "all three latency metrics regressed"
          [ "achieved_rate"; "latency_p999_ns"; "latency_p99_ns" ]
          metrics;
        List.iter
          (fun row ->
            check Alcotest.string "key is the offered rate" "rate=1000"
              row.Perfdiff.key)
          r.Perfdiff.regressions);
    case "service documents diff throughput, tails and drill RTO" (fun () ->
        let doc achieved p99 rto =
          Printf.sprintf
            {|{"schema":"dsu-service/v1","points":[{"offered_rate":1000.0,"achieved_rate":%f,"latency":{"p99_ns":%d,"p999_ns":%d}}],"drills":[{"kind":"flat","rpo_lost":0,"rto_ns":%d}]}|}
            achieved p99 (2 * p99) rto
        in
        let r =
          diff_ok ~base:(doc 990.0 100 1_000_000)
            ~current:(doc 500.0 300 5_000_000)
            ()
        in
        check Alcotest.string "kind" "dsu-service/v1" r.Perfdiff.kind;
        let keyed =
          List.map
            (fun row -> (row.Perfdiff.key, row.Perfdiff.metric))
            r.Perfdiff.regressions
          |> List.sort compare
        in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "throughput, both tails and RTO all regressed"
          [
            ("drill flat", "rto_ns");
            ("serve rate=1000", "achieved_rate");
            ("serve rate=1000", "latency_p999_ns");
            ("serve rate=1000", "latency_p99_ns");
          ]
          keyed;
        let faster =
          diff_ok ~base:(doc 500.0 300 5_000_000)
            ~current:(doc 990.0 100 1_000_000)
            ()
        in
        check Alcotest.int "all improvements the other way" 4
          (List.length faster.Perfdiff.improvements));
    case "disjoint keys land in only_base / only_current" (fun () ->
        let base = bechamel_doc [ ("old", 1.0); ("shared", 2.0) ] in
        let current = bechamel_doc [ ("shared", 2.0); ("new", 3.0) ] in
        let r = diff_ok ~base ~current () in
        check
          (Alcotest.list Alcotest.string)
          "only base" [ "old/ns_per_run" ] r.Perfdiff.only_base;
        check
          (Alcotest.list Alcotest.string)
          "only current" [ "new/ns_per_run" ] r.Perfdiff.only_current;
        check Alcotest.int "one shared row" 1 (List.length r.Perfdiff.rows));
    case "structural problems are errors, not crashes" (fun () ->
        let ok = bechamel_doc [ ("a", 1.0) ] in
        let scal =
          {|{"schema":"dsu-scalability/v1","points":[]}|}
        in
        let fails base current =
          match Perfdiff.diff_strings ~base ~current () with
          | Error _ -> true
          | Ok _ -> false
        in
        check Alcotest.bool "malformed JSON" true (fails "{ oops" ok);
        check Alcotest.bool "unrecognized document" true (fails "{}" ok);
        check Alcotest.bool "kind mismatch" true (fails ok scal);
        check Alcotest.bool "matching kinds fine" false (fails scal scal));
    case "autotune documents diff per-plan throughput both directions"
      (fun () ->
        let doc winner plans =
          Printf.sprintf
            {|{"schema":"dsu-autotune/v1","winner":"%s","measurements":[%s]}|}
            winner
            (String.concat ","
               (List.map
                  (fun (plan, mops) ->
                    Printf.sprintf
                      {|{"plan":"%s","mops_per_sec":%f,"failures":0}|} plan
                      mops)
                  plans))
        in
        let fast = doc "rand:two-try:relaxed-reads:on:flat"
            [ ("rand:two-try:relaxed-reads:on:flat", 10.0) ]
        and slow = doc "rand:two-try:relaxed-reads:on:flat"
            [ ("rand:two-try:relaxed-reads:on:flat", 5.0) ]
        in
        (* throughput drop = regression *)
        let down = diff_ok ~base:fast ~current:slow () in
        check Alcotest.string "kind" "dsu-autotune/v1" down.Perfdiff.kind;
        (match down.Perfdiff.regressions with
        | [ row ] ->
          check Alcotest.string "key"
            "plan=rand:two-try:relaxed-reads:on:flat" row.Perfdiff.key;
          check Alcotest.string "metric" "mops_per_sec" row.Perfdiff.metric
        | _ -> Alcotest.fail "expected one regression");
        check Alcotest.int "no warning when the winner is unchanged" 0
          (List.length down.Perfdiff.warnings);
        (* throughput gain = improvement, never a regression *)
        let up = diff_ok ~base:slow ~current:fast () in
        check Alcotest.int "no regressions" 0
          (List.length up.Perfdiff.regressions);
        check Alcotest.int "one improvement" 1
          (List.length up.Perfdiff.improvements));
    case "autotune winner change is a warning, not a structural error"
      (fun () ->
        let doc winner =
          Printf.sprintf
            {|{"schema":"dsu-autotune/v1","winner":"%s","measurements":[{"plan":"%s","mops_per_sec":7.0,"failures":0}]}|}
            winner winner
        in
        let base = doc "rand:two-try:relaxed-reads:on:flat" in
        let current = doc "rank:halving:relaxed-reads:on:packed" in
        let r = diff_ok ~base ~current () in
        (match r.Perfdiff.warnings with
        | [ w ] ->
          check Alcotest.bool "warning names both plans" true
            (let has needle =
               let nl = String.length needle and hl = String.length w in
               let rec at i =
                 i + nl <= hl && (String.sub w i nl = needle || at (i + 1))
               in
               nl = 0 || at 0
             in
             has "rand:two-try:relaxed-reads:on:flat"
             && has "rank:halving:relaxed-reads:on:packed")
        | ws ->
          Alcotest.fail
            (Printf.sprintf "expected exactly one warning, got %d"
               (List.length ws)));
        (* the changed winner keys don't match, so no rows compare — but
           that is only_base/only_current traffic, not an Error *)
        let j = Json.parse_exn (Json.to_string (Perfdiff.to_json r)) in
        match Json.member "warnings" j with
        | Some (Json.List [ Json.String _ ]) -> ()
        | _ -> Alcotest.fail "warnings missing from dsu-perfdiff/v1 JSON");
    case "report serializes as dsu-perfdiff/v1" (fun () ->
        let base = bechamel_doc [ ("a", 100.0) ] in
        let current = bechamel_doc [ ("a", 200.0) ] in
        let r = diff_ok ~base ~current () in
        let j = Json.parse_exn (Json.to_string (Perfdiff.to_json r)) in
        check Alcotest.bool "schema" true
          (Json.member "schema" j = Some (Json.String "dsu-perfdiff/v1"));
        check Alcotest.bool "compared" true
          (Json.member "compared" j = Some (Json.Int 1));
        match Json.member "regressions" j with
        | Some (Json.List [ row ]) ->
          check (Alcotest.option (Alcotest.float 1e-9)) "delta serialized"
            (Some 100.0)
            (json_num (Json.member "delta_pct" row))
        | _ -> Alcotest.fail "expected one serialized regression");
  ]

(* ------------------------------------------------------------ autotune *)

module Autotune = Harness.Autotune

(* A tiny but real profile: every autotune test below actually times
   plans, so keep the sweep to two plans over a few thousand ops. *)
let tiny_profile =
  {
    Autotune.n = 256;
    domains = 1;
    unite_percent = 50;
    dist = Harness.Scalability.Uniform;
    total_ops = 2_000;
    seed = 3;
  }

let packed_plan =
  {
    Dsu.Plan.default with
    Dsu.Plan.linking = Dsu.Plan.By_rank;
    layout = Dsu.Plan.Packed;
  }

let in_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dsu-autotune-test-%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

let autotune_tests =
  [
    case "fingerprint is deterministic and field-sensitive" (fun () ->
        check Alcotest.string "stable" "n256-d1-u50-uniform-ops2000-s3"
          (Autotune.fingerprint tiny_profile);
        check Alcotest.bool "n changes it" true
          (Autotune.fingerprint { tiny_profile with Autotune.n = 512 }
          <> Autotune.fingerprint tiny_profile));
    case "run measures every plan and picks the fastest" (fun () ->
        let r =
          Autotune.run ~plans:[ Dsu.Plan.default; packed_plan ]
            ~profile:tiny_profile ()
        in
        check Alcotest.int "both plans measured" 2
          (List.length r.Autotune.measurements);
        check Alcotest.bool "winner was measured" true
          (List.exists
             (fun m -> Dsu.Plan.equal m.Autotune.plan r.Autotune.winner)
             r.Autotune.measurements);
        check Alcotest.bool "winner is the max" true
          (List.for_all
             (fun m -> m.Autotune.mops_per_sec <= r.Autotune.winner_mops)
             r.Autotune.measurements);
        check Alcotest.bool "margins non-negative" true
          (r.Autotune.margin_over_runner_up_pct >= 0.
          && r.Autotune.margin_over_default_pct >= 0.));
    case "the default plan is force-included" (fun () ->
        let r = Autotune.run ~plans:[ packed_plan ] ~profile:tiny_profile () in
        check Alcotest.bool "default measured" true
          (List.exists
             (fun m -> Dsu.Plan.equal m.Autotune.plan Dsu.Plan.default)
             r.Autotune.measurements));
    case "dsu-autotune/v1 JSON round-trips" (fun () ->
        let r =
          Autotune.run ~plans:[ Dsu.Plan.default; packed_plan ]
            ~profile:tiny_profile ()
        in
        let j = Json.to_string (Autotune.to_json r) in
        match Autotune.of_json_string j with
        | Error e -> Alcotest.fail e
        | Ok r' ->
          check Alcotest.bool "winner survives" true
            (Dsu.Plan.equal r.Autotune.winner r'.Autotune.winner);
          check Alcotest.string "fingerprint survives"
            (Autotune.fingerprint r.Autotune.profile)
            (Autotune.fingerprint r'.Autotune.profile);
          check Alcotest.int "measurements survive"
            (List.length r.Autotune.measurements)
            (List.length r'.Autotune.measurements));
    case "decoder rejects wrong schema and junk" (fun () ->
        (match Autotune.of_json_string {|{"schema":"dsu-latency/v1"}|} with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted a wrong schema");
        match Autotune.of_json_string "{ nope" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted malformed JSON");
    case "auto caches by fingerprint; corrupt cache is a miss" (fun () ->
        in_temp_dir (fun dir ->
            let r1, src1 =
              Autotune.auto ~plans:[ Dsu.Plan.default ] ~cache_dir:dir
                ~profile:tiny_profile ()
            in
            check Alcotest.bool "first run measures" true (src1 = `Measured);
            let _, src2 =
              Autotune.auto ~plans:[ Dsu.Plan.default ] ~cache_dir:dir
                ~profile:tiny_profile ()
            in
            check Alcotest.bool "second run hits" true (src2 = `Cached);
            (match Autotune.load_cached ~dir tiny_profile with
            | Some r ->
              check Alcotest.bool "cache round-trips winner" true
                (Dsu.Plan.equal r.Autotune.winner r1.Autotune.winner)
            | None -> Alcotest.fail "cache entry unreadable");
            (* a different profile misses *)
            check Alcotest.bool "other profile misses" true
              (Autotune.load_cached ~dir
                 { tiny_profile with Autotune.seed = 99 }
              = None);
            (* truncate the entry: decode fails, treated as a miss *)
            let path = Autotune.cache_path ~dir tiny_profile in
            let oc = open_out path in
            output_string oc "{ definitely not json";
            close_out oc;
            check Alcotest.bool "corrupt entry is a miss" true
              (Autotune.load_cached ~dir tiny_profile = None)));
  ]

let () =
  Alcotest.run "harness"
    [
      ("forest", forest_tests);
      ("measure", measure_tests);
      ("registry", registry_tests);
      ("latency", latency_tests);
      ("perfdiff", perfdiff_tests);
      ("autotune", autotune_tests);
    ]
