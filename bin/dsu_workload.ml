(* dsu_workload — run configurable workloads against any of the
   implementations, natively (wall-clock, optional domains) or inside the
   APRAM simulator (exact work counts), and fuzz linearizability from the
   command line.

   Examples:
     dsu_workload native --impl jt --policy two-try -n 65536 --ops 262144
     dsu_workload native --impl lock --domains 4
     dsu_workload sim --procs 8 --sched cas-adversary -n 4096
     dsu_workload sim --procs 8 --sched crash:0,1:400
     dsu_workload lincheck --trials 200 --procs 3
     dsu_workload chaos --domains 8 --crash-domains 2 --validate
     dsu_workload chaos --crash-domains 2 --recover --snapshot-out crash
     dsu_workload snapshot -n 4096 --ops 20000 --snapshot-out dsu.snap
     dsu_workload restore --resume-from dsu.snap --repair --validate
     dsu_workload native --impl jt --wal ops.wal
     dsu_workload snapshot --fuzzy --snapshot-out fuzzy.snap
     dsu_workload restore --resume-from fuzzy.snap --wal ops.wal --validate
     dsu_workload chaos --durable --kind packed
     dsu_workload wal --file ops.wal --dump --check
     dsu_workload durability --max-overhead 15
     dsu_workload serve --arrival-rate 20000 --workers 2 --admission reject
     dsu_workload serve --wal --chaos --json drills.json *)

open Cmdliner

module Rng = Repro_util.Rng
module Policy = Dsu.Find_policy
module Dwal = Repro_durable.Wal
module Dfuzzy = Repro_durable.Fuzzy
module Drecovery = Repro_durable.Recovery

(* ------------------------------------------------------- shared options *)

let n_arg =
  Arg.(value & opt int 4096 & info [ "n"; "elements" ] ~docv:"N" ~doc:"Number of elements.")

let ops_arg =
  Arg.(value & opt int 16384 & info [ "ops" ] ~docv:"M" ~doc:"Number of operations.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let unite_frac_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "unite-frac" ] ~docv:"F" ~doc:"Fraction of operations that are unions.")

let policy_conv =
  let parse s =
    match Policy.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, Policy.pp)

let policy_arg =
  Arg.(
    value
    & opt policy_conv Policy.Two_try_splitting
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:"Find policy: none, one-try, two-try or compression.")

type sched_kind =
  [ `Round_robin
  | `Sequential
  | `Random
  | `Cas_adversary
  | `Quantum of int
  | `Crash of int list * int
  | `Stall_storm of int * int ]

let sched_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "round-robin" ] -> Ok (`Round_robin : sched_kind)
    | [ "sequential" ] -> Ok `Sequential
    | [ "random" ] -> Ok `Random
    | [ "cas-adversary" ] -> Ok `Cas_adversary
    | [ "quantum"; q ] -> (
      match int_of_string_opt q with
      | Some q when q > 0 -> Ok (`Quantum q)
      | _ -> Error (`Msg "quantum:<positive int>"))
    | [ "crash"; victims; after ] -> (
      let victims =
        String.split_on_char ',' victims
        |> List.filter (fun v -> v <> "")
        |> List.map int_of_string_opt
      in
      match (List.for_all Option.is_some victims, int_of_string_opt after) with
      | true, Some a when a > 0 ->
        Ok (`Crash (List.filter_map Fun.id victims, a))
      | _ -> Error (`Msg "crash:<pid,pid,...>:<positive step budget>"))
    | [ "stall-storm"; prob; stall ] -> (
      match (int_of_string_opt prob, int_of_string_opt stall) with
      | Some p, Some k when p >= 0 && p <= 100 && k > 0 ->
        Ok (`Stall_storm (p, k))
      | _ -> Error (`Msg "stall-storm:<percent 0-100>:<positive stall length>"))
    | _ -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  let print ppf = function
    | `Round_robin -> Format.pp_print_string ppf "round-robin"
    | `Sequential -> Format.pp_print_string ppf "sequential"
    | `Random -> Format.pp_print_string ppf "random"
    | `Cas_adversary -> Format.pp_print_string ppf "cas-adversary"
    | `Quantum q -> Format.fprintf ppf "quantum:%d" q
    | `Crash (victims, after) ->
      Format.fprintf ppf "crash:%s:%d"
        (String.concat "," (List.map string_of_int victims))
        after
    | `Stall_storm (p, k) -> Format.fprintf ppf "stall-storm:%d:%d" p k
  in
  Arg.conv (parse, print)

let sched_arg =
  Arg.(
    value
    & opt sched_conv `Random
    & info [ "sched" ] ~docv:"SCHED"
        ~doc:
          "Scheduler: round-robin, sequential, random, cas-adversary, \
           quantum:K, crash:PIDS:AFTER (crash-stop the comma-separated pids \
           once each has run about AFTER steps) or stall-storm:PCT:K (park a \
           random process for K decisions with probability PCT%).")

let make_sched (kind : sched_kind) seed =
  match kind with
  | `Round_robin -> Apram.Scheduler.round_robin ()
  | `Sequential -> Apram.Scheduler.sequential ()
  | `Random -> Apram.Scheduler.random ~seed
  | `Cas_adversary -> Apram.Scheduler.cas_adversary ~seed
  | `Quantum q -> Apram.Scheduler.quantum ~seed ~quantum:q
  | `Crash (victims, after) -> Apram.Scheduler.crash ~seed ~victims ~after
  | `Stall_storm (prob_percent, stall) ->
    Apram.Scheduler.stall_storm ~seed ~prob_percent ~stall

let workload ~n ~ops ~unite_frac ~seed =
  Workload.Random_mix.mixed ~rng:(Rng.create seed) ~n ~m:ops
    ~unite_fraction:unite_frac

(* ----------------------------------------------------------- telemetry *)

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write the metrics registry as JSON lines \
           to $(docv) after the run (\"-\" = stdout).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Enable event tracing and write a Chrome trace_event JSON to \
           $(docv) after the run (\"-\" = stdout); open it in \
           about://tracing or https://ui.perfetto.dev.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Print a once-per-500ms one-line throughput + find-p99 report to \
           stderr while the workload runs (enables telemetry).")

let arm_telemetry ~metrics_out ~trace_out ~progress =
  if metrics_out <> None || progress then Repro_obs.Metrics.set_enabled true;
  if trace_out <> None then Repro_obs.Trace.set_enabled true

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error msg ->
    Error (`Msg (Printf.sprintf "cannot read %s" msg))

let with_out file f =
  match file with
  | "-" -> f stdout
  | path ->
    let oc =
      try open_out path
      with Sys_error msg ->
        Printf.eprintf "dsu_workload: cannot write telemetry output: %s\n%!" msg;
        exit 1
    in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* The metrics file is the registry dump plus one trailing object carrying
   the flat [Dsu.Stats] counters (when the implementation collects them),
   so the two counter systems can be cross-checked from one artifact. *)
let write_metrics out stats =
  with_out out (fun oc ->
      output_string oc
        (Repro_obs.Export.metrics_jsonl (Repro_obs.Metrics.snapshot ()));
      match stats with
      | None -> ()
      | Some s ->
        output_string oc
          (Printf.sprintf "{\"name\":\"dsu_stats\",\"type\":\"object\",\"value\":%s}\n"
             (Dsu.Stats.to_json s)))

let write_trace out =
  with_out out (fun oc ->
      output_string oc
        (Repro_obs.Export.chrome_trace_string (Repro_obs.Trace.dump ()));
      output_char oc '\n')

let progress_loop stop =
  let module M = Repro_obs.Metrics in
  let lookup snap name =
    List.find_opt (fun (s : M.sample) -> s.name = name) snap
  in
  let last_ops = ref 0 in
  let last_t = ref (Repro_obs.Clock.wall_s ()) in
  while not (Atomic.get stop) do
    Unix.sleepf 0.5;
    let snap = M.snapshot () in
    let ops =
      match lookup snap "dsu_ops_total" with
      | Some { value = M.Counter_v v; _ } -> v
      | _ -> 0
    in
    let p99 =
      match lookup snap "dsu_find_latency_ns" with
      | Some { value = M.Hdr_v h; _ } -> Repro_obs.Hdr.quantile h 0.99
      | Some { value = M.Histogram_v h; _ } -> M.quantile h 0.99
      | _ -> 0
    in
    let now = Repro_obs.Clock.wall_s () in
    let dt = now -. !last_t in
    let rate =
      if dt > 0. then float_of_int (ops - !last_ops) /. dt /. 1e6 else 0.
    in
    Printf.eprintf "progress: %d ops  %.2f Mops/s  find p99 %dns\n%!" ops rate
      p99;
    last_ops := ops;
    last_t := now
  done

let with_progress progress f =
  if not progress then f ()
  else begin
    let stop = Atomic.make false in
    let ticker = Domain.spawn (fun () -> progress_loop stop) in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join ticker)
      f
  end

(* ---------------------------------------------------------- native mode *)

type impl = Jt | Jt_early | Rank | Packed | Aw | Lock | Seq

let impl_conv =
  let parse = function
    | "jt" -> Ok Jt
    | "jt-early" -> Ok Jt_early
    | "rank" -> Ok Rank
    | "packed" -> Ok Packed
    | "aw" -> Ok Aw
    | "lock" -> Ok Lock
    | "seq" -> Ok Seq
    | s -> Error (`Msg (Printf.sprintf "unknown implementation %S" s))
  in
  let print ppf impl =
    Format.pp_print_string ppf
      (match impl with
      | Jt -> "jt"
      | Jt_early -> "jt-early"
      | Rank -> "rank"
      | Packed -> "packed"
      | Aw -> "aw"
      | Lock -> "lock"
      | Seq -> "seq")
  in
  Arg.conv (parse, print)

let impl_arg =
  Arg.(
    value
    & opt impl_conv Jt
    & info [ "impl" ] ~docv:"IMPL"
        ~doc:
          "Implementation: jt (the paper's algorithm), jt-early (Section 6 \
           variant), rank (Section 7 variant), packed (single-word \
           rank+parent layout), aw (Anderson-Woll), lock (global mutex), \
           seq (sequential).")

(* --plan: run under one point of the Dsu.Plan space, or let the autotuner
   choose.  A malformed spec is a Cmdliner conv error — proper usage
   message and the CLI-error exit status, never a backtrace. *)
let plan_conv =
  let parse s =
    if s = "auto" then Ok `Auto
    else
      match Dsu.Plan.of_string s with
      | Ok p -> Ok (`Plan p)
      | Error e -> Error (`Msg e)
  in
  let print ppf = function
    | `Auto -> Format.pp_print_string ppf "auto"
    | `Plan p -> Dsu.Plan.pp ppf p
  in
  Arg.conv (parse, print)

let plan_arg =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "plan" ] ~docv:"SPEC"
        ~doc:
          "Run under one implementation plan \
           (linking:compaction:order:backoff:layout, e.g. \
           rank:halving:relaxed-reads:on:packed), or $(b,auto) = pick the \
           fastest plan for this workload profile via the autotuner (cached \
           by profile fingerprint; see $(b,--autotune-cache)).  Overrides \
           $(b,--impl) and $(b,--policy).")

let autotune_cache_arg =
  Arg.(
    value
    & opt string Harness.Autotune.default_cache_dir
    & info [ "autotune-cache" ] ~docv:"DIR"
        ~doc:"Cache directory for $(b,--plan auto) results.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:"OCaml domains to spread the operations over (native mode).")

(* Argument validation reports through Cmdliner ([Term.term_result]), so a
   bad flag combination prints a proper error on stderr and exits with the
   CLI-error status instead of an uncaught [Failure] backtrace. *)
let check_arg cond msg = if cond then Ok () else Error (`Msg msg)

let ( let* ) = Result.bind

let contention_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "contention-out" ] ~docv:"FILE"
        ~doc:
          "Enable per-site contention attribution and write the \
           dsu-contention/v1 report (CAS failures per Site label and per \
           node, hot-node heatmap) to $(docv) after the run (\"-\" = \
           stdout).  Only the jt/jt-early implementations carry the \
           instrumented CAS sites.")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"FILE"
        ~doc:
          "Append every link to a group-committed write-ahead log at \
           $(docv) (jt, jt-early, rank, packed or $(b,--plan) only — the \
           baselines carry no link notification).")

let wal_flush_records_arg =
  Arg.(
    value
    & opt int 256
    & info [ "wal-flush-records" ] ~docv:"K"
        ~doc:"Group-commit batch bound: commit once $(docv) records are staged.")

let wal_flush_interval_arg =
  Arg.(
    value
    & opt float 0.002
    & info [ "wal-flush-interval" ] ~docv:"SECONDS"
        ~doc:"Group-commit window: commit staged records at least this often.")

let run_native impl policy plan autotune_cache n ops unite_frac seed domains
    wal wal_flush_records wal_flush_interval metrics_out trace_out
    contention_out progress =
  let* () = check_arg (domains >= 1) "--domains must be >= 1" in
  let* () = check_arg (n >= 1) "--elements must be >= 1" in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  let* () =
    check_arg
      (not (impl = Seq && domains > 1))
      "--impl seq is single-threaded; use --domains 1"
  in
  let* () =
    check_arg
      (wal = None || plan <> None
      || match impl with Jt | Jt_early | Rank | Packed -> true | Aw | Lock | Seq -> false)
      "--wal needs an implementation with link notifications (jt, jt-early, \
       rank, packed or --plan)"
  in
  let* () =
    check_arg (wal_flush_records >= 1) "--wal-flush-records must be >= 1"
  in
  let* () =
    check_arg (wal_flush_interval > 0.) "--wal-flush-interval must be positive"
  in
  (* Resolve --plan before arming telemetry: the auto calibration sweep
     runs its own timed workloads and must not pollute this run's
     metrics. *)
  let* plan =
    match plan with
    | None -> Ok None
    | Some (`Plan p) -> Ok (Some p)
    | Some `Auto ->
      let profile =
        {
          Harness.Autotune.n;
          domains;
          unite_percent = int_of_float (unite_frac *. 100.);
          dist = Harness.Scalability.Uniform;
          total_ops = ops;
          seed;
        }
      in
      let r, source =
        Harness.Autotune.auto ~cache_dir:autotune_cache ~profile ()
      in
      Printf.printf "plan:          %s (auto, %s)\n"
        (Dsu.Plan.to_string r.Harness.Autotune.winner)
        (match source with `Cached -> "cached" | `Measured -> "measured");
      Ok (Some r.Harness.Autotune.winner)
  in
  arm_telemetry ~metrics_out ~trace_out ~progress;
  if contention_out <> None then begin
    Dsu.Contention.set_enabled true;
    Dsu.Contention.reset ()
  end;
  let wal_writer =
    Option.map
      (fun path ->
        Dwal.create_writer ~flush_records:wal_flush_records
          ~flush_interval:wal_flush_interval path)
      wal
  in
  let on_link = Option.map Dwal.append wal_writer in
  let root_fn = ref None in
  let ops_list = workload ~n ~ops ~unite_frac ~seed in
  let buckets = Workload.Op.round_robin ops_list ~p:domains in
  let apply_ops ~unite ~same_set ~find bucket =
    List.iter
      (fun op ->
        match op with
        | Workload.Op.Unite (x, y) -> unite x y
        | Workload.Op.Same_set (x, y) -> ignore (same_set x y : bool)
        | Workload.Op.Find x -> ignore (find x : int))
      bucket
  in
  let in_domains work =
    with_progress progress (fun () ->
        let t0 = Unix.gettimeofday () in
        let handles =
          List.init domains (fun k -> Domain.spawn (fun () -> work buckets.(k)))
        in
        List.iter Domain.join handles;
        Unix.gettimeofday () -. t0)
  in
  let elapsed, final_sets, stats =
    match plan with
    | Some p -> (
      let policy = p.Dsu.Plan.compaction in
      let memory_order = p.Dsu.Plan.memory_order in
      let backoff = p.Dsu.Plan.backoff in
      match p.Dsu.Plan.layout with
      | Dsu.Plan.Flat | Dsu.Plan.Padded ->
        let d =
          Dsu.Native.create ~policy ~memory_order ~backoff
            ~padded:(p.Dsu.Plan.layout = Dsu.Plan.Padded) ~collect_stats:true
            ?on_link ~seed n
        in
        let dt =
          in_domains
            (apply_ops ~unite:(Dsu.Native.unite d)
               ~same_set:(Dsu.Native.same_set d) ~find:(Dsu.Native.find d))
        in
        root_fn := Some (Dsu.Native.is_root d);
        (dt, Dsu.Native.count_sets d, Some (Dsu.Native.stats d))
      | Dsu.Plan.Boxed ->
        let d =
          Dsu.Boxed.create ~policy ~backoff ~collect_stats:true ?on_link ~seed n
        in
        let dt =
          in_domains
            (apply_ops ~unite:(Dsu.Boxed.unite d)
               ~same_set:(Dsu.Boxed.same_set d) ~find:(Dsu.Boxed.find d))
        in
        root_fn := Some (Dsu.Boxed.is_root d);
        (dt, Dsu.Boxed.count_sets d, Some (Dsu.Boxed.stats d))
      | Dsu.Plan.Packed ->
        let d =
          Dsu.Packed.Native.create ~policy ~backoff ~memory_order
            ~collect_stats:true ?on_link n
        in
        let dt =
          in_domains
            (apply_ops ~unite:(Dsu.Packed.Native.unite d)
               ~same_set:(Dsu.Packed.Native.same_set d)
               ~find:(Dsu.Packed.Native.find d))
        in
        root_fn := Some (Dsu.Packed.Native.is_root d);
        (dt, Dsu.Packed.Native.count_sets d, Some (Dsu.Packed.Native.stats d)))
    | None -> (
      match impl with
      | Jt | Jt_early ->
      let d =
        Dsu.Native.create ~policy ~early:(impl = Jt_early) ~collect_stats:true
          ?on_link ~seed n
      in
      let dt =
        in_domains
          (apply_ops ~unite:(Dsu.Native.unite d) ~same_set:(Dsu.Native.same_set d)
             ~find:(Dsu.Native.find d))
      in
      root_fn := Some (Dsu.Native.is_root d);
      (dt, Dsu.Native.count_sets d, Some (Dsu.Native.stats d))
    | Rank ->
      let d = Dsu.Rank.Native.create ~collect_stats:true ?on_link n in
      let dt =
        in_domains
          (apply_ops ~unite:(Dsu.Rank.Native.unite d)
             ~same_set:(Dsu.Rank.Native.same_set d) ~find:(Dsu.Rank.Native.find d))
      in
      (dt, Dsu.Rank.Native.count_sets d, Some (Dsu.Rank.Native.stats d))
    | Packed ->
      let d = Dsu.Packed.Native.create ~policy ~collect_stats:true ?on_link n in
      let dt =
        in_domains
          (apply_ops ~unite:(Dsu.Packed.Native.unite d)
             ~same_set:(Dsu.Packed.Native.same_set d)
             ~find:(Dsu.Packed.Native.find d))
      in
      root_fn := Some (Dsu.Packed.Native.is_root d);
      (dt, Dsu.Packed.Native.count_sets d, Some (Dsu.Packed.Native.stats d))
    | Aw ->
      let d = Baselines.Anderson_woll.Native.create ~collect_stats:true n in
      let dt =
        in_domains
          (apply_ops
             ~unite:(Baselines.Anderson_woll.Native.unite d)
             ~same_set:(Baselines.Anderson_woll.Native.same_set d)
             ~find:(Baselines.Anderson_woll.Native.find d))
      in
      (dt, Baselines.Anderson_woll.Native.count_sets d,
       Some (Baselines.Anderson_woll.Native.stats d))
    | Lock ->
      let d = Baselines.Locked_dsu.create ~seed n in
      let dt =
        in_domains
          (apply_ops ~unite:(Baselines.Locked_dsu.unite d)
             ~same_set:(Baselines.Locked_dsu.same_set d)
             ~find:(Baselines.Locked_dsu.find d))
      in
      (dt, Baselines.Locked_dsu.count_sets d, None)
    | Seq ->
      let d = Sequential.Seq_dsu.create ~seed n in
      let t0 = Unix.gettimeofday () in
      Workload.Op.run_seq d ops_list;
      (Unix.gettimeofday () -. t0, Sequential.Seq_dsu.count_sets d, None))
  in
  Printf.printf "elements:      %d\noperations:    %d (%.0f%% unions)\ndomains:       %d\n"
    n ops (unite_frac *. 100.) domains;
  Printf.printf "elapsed:       %.4fs (%.2f Mops/s)\nfinal sets:    %d\n" elapsed
    (float_of_int ops /. elapsed /. 1e6)
    final_sets;
  (match wal_writer with
  | None -> ()
  | Some w ->
    Dwal.close w;
    let s = Dwal.writer_stats w in
    Printf.printf "wal:           %d appended, %d committed in %d group commit(s) -> %s\n"
      s.Dwal.ws_appended s.Dwal.ws_committed s.Dwal.ws_commits (Dwal.path w));
  (match stats with
  | None -> ()
  | Some s -> Printf.printf "counters:      %s\n" (Format.asprintf "%a" Dsu.Stats.pp s));
  (match metrics_out with None -> () | Some out -> write_metrics out stats);
  (match trace_out with None -> () | Some out -> write_trace out);
  (match contention_out with
  | None -> ()
  | Some out ->
    let r = Dsu.Contention.report () in
    with_out out (fun oc ->
        output_string oc
          (Repro_obs.Json.to_string
             (Dsu.Contention.to_json ?is_root:!root_fn
                ~heatmap_buckets:(Stdlib.min 32 n) ~n r));
        output_char oc '\n');
    Dsu.Contention.set_enabled false);
  Ok ()

let native_cmd =
  let doc = "Run a workload natively (wall clock; optional domains)." in
  Cmd.v (Cmd.info "native" ~doc)
    Term.(
      term_result
        (const run_native $ impl_arg $ policy_arg $ plan_arg
        $ autotune_cache_arg $ n_arg $ ops_arg $ unite_frac_arg $ seed_arg
        $ domains_arg $ wal_arg $ wal_flush_records_arg
        $ wal_flush_interval_arg $ metrics_out_arg $ trace_out_arg
        $ contention_out_arg $ progress_arg))

(* ------------------------------------------------------------- sim mode *)

let procs_arg =
  Arg.(value & opt int 4 & info [ "procs" ] ~docv:"P" ~doc:"Simulated processes.")

let run_sim policy n ops unite_frac seed procs sched_kind metrics_out trace_out
    =
  let* () = check_arg (procs >= 1) "--procs must be >= 1" in
  let* () = check_arg (n >= 1) "--elements must be >= 1" in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  let* () =
    match sched_kind with
    | `Crash (victims, _) ->
      check_arg
        (List.for_all (fun v -> v >= 0 && v < procs) victims)
        "crash victims must be pids in [0, procs)"
    | _ -> Ok ()
  in
  arm_telemetry ~metrics_out ~trace_out ~progress:false;
  let ops_list = workload ~n ~ops ~unite_frac ~seed in
  let split = Workload.Op.round_robin ops_list ~p:procs in
  let sched = make_sched sched_kind (seed + 1) in
  let r = Harness.Measure.run_sim ~sched ~policy ~n ~seed ~ops:split () in
  let costs = Array.map float_of_int r.Harness.Measure.op_costs in
  let s = Repro_util.Stats.summarize costs in
  Printf.printf
    "elements:      %d\noperations:    %d on %d processes (%s schedule)\n" n ops
    procs (Apram.Scheduler.name sched);
  Printf.printf "total work:    %d shared-memory steps (%.2f/op)\n"
    r.Harness.Measure.total_steps
    (Harness.Measure.work_per_op r);
  Printf.printf "steps/op:      mean %.2f  median %.0f  p99 %.0f  max %.0f\n"
    s.Repro_util.Stats.mean s.Repro_util.Stats.median s.Repro_util.Stats.p99
    s.Repro_util.Stats.max;
  Format.printf "counters:      %a@." Dsu.Stats.pp r.Harness.Measure.stats;
  (match r.Harness.Measure.crashed with
  | [] -> ()
  | pids ->
    Printf.printf "crashed:       %s (in-flight ops abandoned)\n"
      (String.concat ", " (List.map string_of_int pids)));
  (match metrics_out with
  | None -> ()
  | Some out -> write_metrics out (Some r.Harness.Measure.stats));
  (match trace_out with None -> () | Some out -> write_trace out);
  Ok ()

let sim_cmd =
  let doc = "Run a workload in the APRAM simulator (exact work counts)." in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(
      term_result
        (const run_sim $ policy_arg $ n_arg $ ops_arg $ unite_frac_arg
        $ seed_arg $ procs_arg $ sched_arg $ metrics_out_arg $ trace_out_arg))

(* -------------------------------------------------------- lincheck mode *)

let trials_arg =
  Arg.(value & opt int 100 & info [ "trials" ] ~docv:"T" ~doc:"Random trials.")

let ops_per_proc_arg =
  Arg.(
    value & opt int 3
    & info [ "ops-per-proc" ] ~docv:"K" ~doc:"Operations per process (keep small).")

let run_lincheck n procs ops_per_proc trials seed sched_kind =
  let* () =
    check_arg
      (procs * ops_per_proc <= 20)
      "history too large for the exact checker (procs * ops-per-proc <= 20)"
  in
  let* () = check_arg (procs >= 1) "--procs must be >= 1" in
  let* () = check_arg (trials >= 1) "--trials must be >= 1" in
  let rng = Rng.create seed in
  let failures = ref 0 in
  let crash_histories = ref 0 in
  let linearized = ref 0 in
  let vanished = ref 0 in
  for trial = 1 to trials do
    let ops =
      Array.init procs (fun _ ->
          List.init ops_per_proc (fun _ ->
              let x = Rng.int rng n and y = Rng.int rng n in
              if Rng.bool rng then Workload.Op.Unite (x, y)
              else Workload.Op.Same_set (x, y)))
    in
    let sched = make_sched sched_kind (seed + trial) in
    List.iter
      (fun policy ->
        let r = Harness.Measure.run_sim ~sched ~policy ~n ~seed:trial ~ops () in
        let history = r.Harness.Measure.history in
        if Apram.History.pending_calls history = [] then (
          match Lincheck.Checker.check ~n history with
          | Lincheck.Checker.Linearizable -> ()
          | Lincheck.Checker.Not_linearizable msg ->
            incr failures;
            Printf.printf "VIOLATION (policy %s): %s\n" (Policy.to_string policy) msg)
        else begin
          (* Crashed processes left pending invocations: check strict
             linearizability against the quiescent memory — every pending
             op must fully linearize or fully vanish. *)
          incr crash_histories;
          let final_roots =
            Dsu.Sim.roots_of_memory r.Harness.Measure.spec r.Harness.Measure.memory
          in
          let v = Lincheck.Checker.check_crash ~n ~final_roots history in
          linearized := !linearized + List.length v.Lincheck.Checker.linearized;
          vanished := !vanished + List.length v.Lincheck.Checker.vanished;
          if not v.Lincheck.Checker.crash_ok then begin
            incr failures;
            Printf.printf "VIOLATION (policy %s): %s\n" (Policy.to_string policy)
              v.Lincheck.Checker.crash_detail
          end
        end)
      Policy.all
  done;
  let total = trials * List.length Policy.all in
  if !crash_histories > 0 then
    Printf.printf
      "%d histories had crashed processes: %d pending ops linearized, %d vanished\n"
      !crash_histories !linearized !vanished;
  Printf.printf "%d histories checked, %d violations\n" total !failures;
  if !failures > 0 then exit 1;
  Ok ()

let lincheck_cmd =
  let doc = "Fuzz linearizability: random workloads under a chosen scheduler." in
  let n_small =
    Arg.(value & opt int 5 & info [ "n"; "elements" ] ~docv:"N" ~doc:"Elements (keep small).")
  in
  Cmd.v (Cmd.info "lincheck" ~doc)
    Term.(
      term_result
        (const run_lincheck $ n_small $ procs_arg $ ops_per_proc_arg
        $ trials_arg $ seed_arg $ sched_arg))

(* ---------------------------------------------------- snapshot / restore *)

module Rsnap = Repro_recover.Snapshot
module Rrepair = Repro_recover.Repair
module Rrestore = Repro_recover.Restore

let snapshot_format_arg =
  Arg.(
    value
    & opt (enum [ ("binary", Rsnap.Binary); ("json", Rsnap.Json) ]) Rsnap.Binary
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Snapshot encoding: binary or json.")

let write_snapshot_or_die ~format path snap =
  try
    Rsnap.write_file ~format path snap;
    Ok ()
  with Sys_error msg -> Error (`Msg (Printf.sprintf "cannot write snapshot: %s" msg))

let in_domains_apply ~domains ~unite ~same_set ~find buckets =
  let apply bucket =
    List.iter
      (fun op ->
        match op with
        | Workload.Op.Unite (x, y) -> unite x y
        | Workload.Op.Same_set (x, y) -> ignore (same_set x y : bool)
        | Workload.Op.Find x -> ignore (find x : int))
      bucket
  in
  let handles =
    List.init domains (fun k -> Domain.spawn (fun () -> apply buckets.(k)))
  in
  List.iter Domain.join handles

let run_snapshot policy n ops unite_frac seed domains snapshot_out format
    corrupt fuzzy =
  let* () = check_arg (n >= 2) "--elements must be >= 2" in
  let* () = check_arg (ops >= 0) "--ops must be >= 0" in
  let* () = check_arg (domains >= 1) "--domains must be >= 1" in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  let d = Dsu.Native.create ~policy ~seed n in
  let buckets =
    Workload.Op.round_robin (workload ~n ~ops ~unite_frac ~seed) ~p:domains
  in
  let fuzzy_cap =
    if not fuzzy then begin
      in_domains_apply ~domains ~unite:(Dsu.Native.unite d)
        ~same_set:(Dsu.Native.same_set d) ~find:(Dsu.Native.find d) buckets;
      None
    end
    else begin
      (* The capture races the mutators: spawn them, scan mid-flight,
         join.  The written snapshot is the reconciled cut, not the final
         structure — its partition refines the final one. *)
      let handles =
        List.init domains (fun k ->
            Domain.spawn (fun () ->
                List.iter
                  (fun op ->
                    match op with
                    | Workload.Op.Unite (x, y) -> Dsu.Native.unite d x y
                    | Workload.Op.Same_set (x, y) ->
                      ignore (Dsu.Native.same_set d x y : bool)
                    | Workload.Op.Find x -> ignore (Dsu.Native.find d x : int))
                  buckets.(k)))
      in
      let cap = Dfuzzy.of_native d in
      List.iter Domain.join handles;
      Some cap
    end
  in
  let sets = Dsu.Native.count_sets d in
  let snap =
    match fuzzy_cap with
    | None -> Rsnap.of_native d
    | Some cap -> cap.Dfuzzy.snapshot
  in
  (match fuzzy_cap with
  | None -> ()
  | Some cap ->
    Printf.printf "fuzzy:    scanned mid-run in %d ns, %d reconciliation fix(es)\n"
      cap.Dfuzzy.scan_ns
      (List.length cap.Dfuzzy.fixes));
  let snap =
    if not corrupt then snap
    else begin
      (* Testing hook: introduce a 2-cycle so the file decodes (the
         checksum is honest) but fails forest validation until --repair. *)
      let parents = Array.copy snap.Rsnap.parents in
      parents.(0) <- 1;
      parents.(1) <- 0;
      { snap with Rsnap.parents }
    end
  in
  let* () = write_snapshot_or_die ~format snapshot_out snap in
  Printf.printf "snapshot: %d elements, %d sets, crc %08x -> %s%s\n" n sets
    (Rsnap.checksum snap) snapshot_out
    (if corrupt then " (forest deliberately corrupted)" else "");
  Ok ()

let snapshot_cmd =
  let doc = "Run a native workload and write a checkpoint snapshot." in
  let snapshot_out =
    Arg.(
      required
      & opt (some string) None
      & info [ "snapshot-out" ] ~docv:"FILE" ~doc:"Where to write the snapshot.")
  in
  let corrupt =
    Arg.(
      value & flag
      & info [ "corrupt" ]
          ~doc:
            "(testing) Corrupt the written forest with a parent cycle — the \
             checksum stays valid, so loading exercises $(b,restore --repair).")
  in
  let fuzzy =
    Arg.(
      value & flag
      & info [ "fuzzy" ]
          ~doc:
            "Take the snapshot $(i,while) the mutators run (fuzzy epoch \
             capture, no stop-the-world) instead of at quiescence; the \
             written cut refines the final partition.")
  in
  Cmd.v (Cmd.info "snapshot" ~doc)
    Term.(
      term_result
        (const run_snapshot $ policy_arg $ n_arg $ ops_arg $ unite_frac_arg
        $ seed_arg $ domains_arg $ snapshot_out $ snapshot_format_arg $ corrupt
        $ fuzzy))

let resume_ops_arg =
  Arg.(
    value & opt int 0
    & info [ "ops" ] ~docv:"M"
        ~doc:"Operations to run against the restored structure (0 = none).")

let run_restore policy resume_from wal repair validate ops unite_frac seed
    domains snapshot_out format =
  let* () = check_arg (ops >= 0) "--ops must be >= 0" in
  let* () = check_arg (domains >= 1) "--domains must be >= 1" in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  let* snap =
    match Rsnap.read_file resume_from with
    | Ok s -> Ok s
    | Error e -> Error (`Msg (Printf.sprintf "cannot load %s: %s" resume_from e))
  in
  let snap, fixes = if repair then Rrepair.repair snap else (snap, []) in
  List.iter
    (fun fix -> Format.printf "repair: %a@." Rrepair.pp_fix fix)
    fixes;
  let* restored =
    match Rrestore.restore_result ~policy snap with
    | Ok r -> Ok r
    | Error msg ->
      Error
        (`Msg (if repair then msg else msg ^ " (a corrupted snapshot may need --repair)"))
  in
  let count = Rrestore.n restored in
  Printf.printf "restored: %s snapshot, %d elements, %d sets\n"
    (Rsnap.kind_to_string (Rrestore.kind restored))
    count
    (Rrestore.count_sets restored);
  let* () =
    match wal with
    | None -> Ok ()
    | Some path ->
      let* tail =
        match Dwal.read_file path with
        | Ok t -> Ok t
        | Error e -> Error (`Msg (Printf.sprintf "cannot read WAL %s: %s" path e))
      in
      (* Any repair fix voids the epoch-cut containment guarantee, so the
         whole log replays (epoch 0); over-replay is harmless. *)
      let from_epoch = if fixes = [] then snap.Rsnap.epoch else 0 in
      let replayed, skipped, out_of_range =
        Drecovery.replay restored ~from_epoch tail.Dwal.records
      in
      Printf.printf
        "wal:      %d valid record(s), %d replayed from epoch %d, %d below \
         the cut, %d out of range%s; %d sets\n"
        (Array.length tail.Dwal.records)
        replayed from_epoch skipped out_of_range
        (match tail.Dwal.truncated_at with
        | None -> ""
        | Some off -> Printf.sprintf " (torn tail at byte %d dropped)" off)
        (Rrestore.count_sets restored);
      Ok ()
  in
  if ops > 0 then begin
    let buckets =
      Workload.Op.round_robin (workload ~n:count ~ops ~unite_frac ~seed) ~p:domains
    in
    in_domains_apply ~domains ~unite:(Rrestore.unite restored)
      ~same_set:(Rrestore.same_set restored) ~find:(Rrestore.find restored) buckets;
    Printf.printf "resumed:  %d ops on %d domain(s), %d sets\n" ops domains
      (Rrestore.count_sets restored)
  end;
  let* () =
    if not validate then Ok ()
    else begin
      let report = Rsnap.check (Rrestore.snapshot restored) in
      if Repro_fault.Forest_check.ok report then begin
        Printf.printf "validate: ok (%d roots, max depth %d)\n"
          report.Repro_fault.Forest_check.roots
          report.Repro_fault.Forest_check.max_depth;
        Ok ()
      end
      else
        Error
          (`Msg
            (Format.asprintf "forest validation failed: %a"
               Repro_fault.Forest_check.pp report))
    end
  in
  match snapshot_out with
  | None -> Ok ()
  | Some out ->
    let* () = write_snapshot_or_die ~format out (Rrestore.snapshot restored) in
    Printf.printf "snapshot: -> %s\n" out;
    Ok ()

let restore_cmd =
  let doc = "Restore a structure from a snapshot, optionally repairing and resuming." in
  let resume_from =
    Arg.(
      required
      & opt (some string) None
      & info [ "resume-from" ] ~docv:"FILE" ~doc:"Snapshot to load (binary or JSON).")
  in
  let wal =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"FILE"
          ~doc:
            "Replay this write-ahead log's valid prefix onto the restored \
             structure, from the snapshot's epoch on (the durable recovery \
             path); a torn tail is dropped.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:"Run repair-on-restart over the snapshot before restoring.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ] ~doc:"Check the restored forest's invariants after the run.")
  in
  let snapshot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-out" ] ~docv:"FILE"
          ~doc:"Write a fresh snapshot after resuming.")
  in
  Cmd.v (Cmd.info "restore" ~doc)
    Term.(
      term_result
        (const run_restore $ policy_arg $ resume_from $ wal $ repair $ validate
        $ resume_ops_arg $ unite_frac_arg $ seed_arg $ domains_arg
        $ snapshot_out $ snapshot_format_arg))

(* ----------------------------------------------------------- chaos mode *)

module Chaos = Harness.Chaos

let layout_conv =
  let parse s =
    match Harness.Scalability.layout_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown layout %S" s))
  in
  let print ppf l =
    Format.pp_print_string ppf (Harness.Scalability.layout_to_string l)
  in
  Arg.conv (parse, print)

let memory_order_conv =
  let parse s =
    match Dsu.Memory_order.of_string s with
    | Some o -> Ok o
    | None -> Error (`Msg (Printf.sprintf "unknown memory order %S" s))
  in
  Arg.conv (parse, Dsu.Memory_order.pp)

let memory_order_arg =
  Arg.(
    value
    & opt memory_order_conv Dsu.Memory_order.default
    & info [ "memory-order" ] ~docv:"ORDER"
        ~doc:
          "Parent-load ordering mode for the structures under test: \
           relaxed-reads (default), acquire or seq-cst.  Lets the chaos \
           audit A/B the tuned path against the fully fenced baseline.")

let chaos_ops_arg =
  Arg.(
    value & opt int 20_000
    & info [ "ops" ] ~docv:"M" ~doc:"Operations per domain.")

let crash_domains_arg =
  Arg.(
    value & opt int 2
    & info [ "crash-domains" ] ~docv:"K"
        ~doc:"Crash-stop the first $(docv) domains mid-operation.")

let crash_after_arg =
  Arg.(
    value & opt int 5000
    & info [ "crash-after" ] ~docv:"H"
        ~doc:"Base fault-site-hit countdown before a victim crashes.")

let stall_prob_arg =
  Arg.(
    value & opt float 0.01
    & info [ "stall-prob" ] ~docv:"P"
        ~doc:"Per-site-hit stall probability for every domain.")

let stall_len_arg =
  Arg.(
    value & opt int 64
    & info [ "stall-len" ] ~docv:"K" ~doc:"Stall length in spin iterations.")

let fault_seed_arg =
  Arg.(
    value & opt int 7
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed for the fault-injection plan (independent of --seed).")

let validate_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "validate" ]
              ~doc:"Run the post-quiescence audit (the default)." );
          ( false,
            info [ "no-validate" ]
              ~doc:"Skip the audit; only run the fault scenario." );
        ])

let layouts_arg =
  Arg.(
    value
    & opt_all layout_conv []
    & info [ "layout" ] ~docv:"LAYOUT"
        ~doc:
          "Memory layout to test: flat, flat-padded or boxed (repeatable; \
           default flat).")

let policies_arg =
  Arg.(
    value
    & opt_all policy_conv []
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Find policy to test (repeatable; default two-try). One scenario \
           runs per layout/policy pair.")

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the dsu-chaos/v1 report to $(docv) (\"-\" = stdout).")

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:
          "After each crash scenario, snapshot the structure, run \
           repair-on-restart, restore, resume the crashed domains' streams \
           and re-audit (the full recovery drill).")

let durable_arg =
  Arg.(
    value & flag
    & info [ "durable" ]
        ~doc:
          "Run the durable drill instead: mutators log every link to a \
           group-committed WAL while a snapshotter takes fuzzy epoch \
           snapshots; crashes are injected into the snapshot scan and \
           mid-group-commit, then recovery (newest snapshot + WAL tail \
           replay) must restore a structure that absorbs a full re-run and \
           passes the audit.  Runs over snapshot kinds ($(b,--kind)), not \
           $(b,--layout).")

let kind_conv =
  let parse s =
    match Rsnap.kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown snapshot kind %S" s))
  in
  let print ppf k = Format.pp_print_string ppf (Rsnap.kind_to_string k) in
  Arg.conv (parse, print)

let kinds_arg =
  Arg.(
    value
    & opt_all kind_conv []
    & info [ "kind" ] ~docv:"KIND"
        ~doc:
          "With $(b,--durable): snapshot kind to drill — flat, boxed, \
           growable, rank or packed (repeatable; default all five).")

let chaos_snapshot_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-out" ] ~docv:"PREFIX"
        ~doc:
          "With $(b,--recover): archive each scenario's crash-time snapshot \
           as $(docv)-<layout>-<policy>.snap.")

let run_chaos n ops domains crash_domains crash_after stall_prob stall_len
    unite_frac seed fault_seed policies layouts memory_order validate recover
    durable kinds snapshot_out json_out metrics_out =
  let* () =
    check_arg
      (not (durable && recover))
      "--durable and --recover are separate drills; pick one"
  in
  let* () = check_arg (n >= 2) "--elements must be >= 2" in
  let* () = check_arg (ops >= 1) "--ops must be >= 1" in
  let* () = check_arg (domains >= 1) "--domains must be >= 1" in
  let* () =
    check_arg
      (crash_domains >= 0 && crash_domains <= domains)
      "--crash-domains must be between 0 and --domains"
  in
  let* () = check_arg (crash_after >= 1) "--crash-after must be >= 1" in
  let* () =
    check_arg
      (stall_prob >= 0. && stall_prob <= 1.)
      "--stall-prob must be in [0, 1]"
  in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  if metrics_out <> None then Repro_obs.Metrics.set_enabled true;
  let config =
    {
      Chaos.n;
      ops_per_domain = ops;
      domains;
      crash_domains;
      crash_after;
      stall_prob;
      stall_len;
      unite_percent = int_of_float (unite_frac *. 100.);
      seed;
      fault_seed;
      policies = (if policies = [] then [ Policy.Two_try_splitting ] else policies);
      layouts = (if layouts = [] then [ Harness.Scalability.Flat ] else layouts);
      memory_order;
      validate;
    }
  in
  if durable then begin
    let kinds = if kinds = [] then Chaos.all_kinds else kinds in
    let ds =
      Chaos.run_durable_all ~config ~kinds
        ~progress:(fun d -> Format.printf "%a@." Chaos.pp_durable d)
        ()
    in
    (match json_out with
    | None -> ()
    | Some out ->
      with_out out (fun oc ->
          output_string oc
            (Repro_obs.Json.to_string (Chaos.durable_report_to_json ~config ds));
          output_char oc '\n'));
    (match metrics_out with None -> () | Some out -> write_metrics out None);
    let ok = List.for_all Chaos.durable_ok ds in
    Printf.printf "chaos: %d durable drill(s), %s\n" (List.length ds)
      (if ok then "all checks passed" else "CHECKS FAILED");
    if not ok then exit 1;
    Ok ()
  end
  else if not recover then begin
    let scenarios =
      Chaos.run_all ~config
        ~progress:(fun s -> Format.printf "%a@." Chaos.pp_scenario s)
        ()
    in
    (match json_out with
    | None -> ()
    | Some out ->
      with_out out (fun oc ->
          output_string oc (Repro_obs.Json.to_string (Chaos.to_json ~config scenarios));
          output_char oc '\n'));
    (match metrics_out with None -> () | Some out -> write_metrics out None);
    let ok = List.for_all Chaos.scenario_ok scenarios in
    Printf.printf "chaos: %d scenario(s), %s\n" (List.length scenarios)
      (if ok then "all checks passed" else "CHECKS FAILED");
    if not ok then exit 1;
    Ok ()
  end
  else begin
    let results =
      Chaos.run_recovery_all ~config
        ~progress:(fun (s, r) ->
          Format.printf "%a@.%a@." Chaos.pp_scenario s Chaos.pp_recovery r)
        ()
    in
    (match snapshot_out with
    | None -> ()
    | Some prefix ->
      List.iter
        (fun ((s : Chaos.scenario), (r : Chaos.recovery)) ->
          let path =
            Printf.sprintf "%s-%s-%s.snap" prefix
              (Harness.Scalability.layout_to_string s.Chaos.layout)
              (Policy.to_string s.Chaos.policy)
          in
          Rsnap.write_file path r.Chaos.crash_snapshot;
          Printf.printf "snapshot: -> %s\n" path)
        results);
    (match json_out with
    | None -> ()
    | Some out ->
      with_out out (fun oc ->
          output_string oc
            (Repro_obs.Json.to_string (Chaos.recovery_report_to_json ~config results));
          output_char oc '\n'));
    (match metrics_out with None -> () | Some out -> write_metrics out None);
    let ok =
      List.for_all
        (fun (s, r) -> Chaos.scenario_ok s && Chaos.recovery_ok r)
        results
    in
    Printf.printf "chaos: %d scenario(s) with recovery, %s\n"
      (List.length results)
      (if ok then "all checks passed" else "CHECKS FAILED");
    if not ok then exit 1;
    Ok ()
  end

let chaos_cmd =
  let doc =
    "Crash/stall chaos harness: inject faults into concurrent domains, then \
     audit the survivors and the structure against a sequential oracle."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      term_result
        (const run_chaos $ n_arg $ chaos_ops_arg $ domains_arg $ crash_domains_arg
        $ crash_after_arg $ stall_prob_arg $ stall_len_arg $ unite_frac_arg
        $ seed_arg $ fault_seed_arg $ policies_arg $ layouts_arg
        $ memory_order_arg $ validate_arg $ recover_arg $ durable_arg
        $ kinds_arg $ chaos_snapshot_out_arg $ json_out_arg $ metrics_out_arg))

(* --------------------------------------------------------- latency mode *)

module Latency = Harness.Latency
module Perfdiff = Harness.Perfdiff

let arrival_rates_arg =
  Arg.(
    value
    & opt_all float [ 20_000.0 ]
    & info [ "arrival-rate" ] ~docv:"RATE"
        ~doc:
          "Offered arrival rate per load-generator domain, operations per \
           second.  Repeatable; each occurrence adds one point to the \
           sweep.")

let shape_conv =
  let parse s =
    match Latency.shape_of_string s with
    | Some sh -> Ok sh
    | None -> Error (`Msg (Printf.sprintf "unknown arrival shape %S" s))
  in
  let print ppf sh = Format.pp_print_string ppf (Latency.shape_to_string sh) in
  Arg.conv (parse, print)

let shape_arg =
  Arg.(
    value
    & opt shape_conv Latency.Poisson
    & info [ "shape" ] ~docv:"SHAPE"
        ~doc:"Arrival schedule: fixed, poisson, bursty or bursty:K.")

let reservoir_arg =
  Arg.(
    value
    & opt int 512
    & info [ "reservoir" ] ~docv:"K"
        ~doc:"Exact open-loop latency samples kept per sweep point.")

let latency_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "latency-out" ] ~docv:"FILE"
        ~doc:
          "Write the dsu-latency/v1 JSON document to $(docv) (\"-\" = \
           stdout).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Diff this run against a previous dsu-latency/v1 document and \
           print regressions/improvements beyond the noise threshold.")

let diff_threshold_arg =
  Arg.(
    value
    & opt float 10.0
    & info [ "diff-threshold" ] ~docv:"PCT"
        ~doc:"Relative delta (percent) below which a change is noise.")

let run_latency n ops unite_frac seed domains rates shape reservoir
    latency_out baseline threshold =
  let* () = check_arg (n >= 2) "--elements must be >= 2" in
  let* () = check_arg (ops >= 1) "--ops must be >= 1" in
  let* () = check_arg (domains >= 1) "--domains must be >= 1" in
  let* () = check_arg (reservoir >= 1) "--reservoir must be >= 1" in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  let* () =
    check_arg
      (List.for_all (fun r -> r > 0.) rates)
      "--arrival-rate must be positive"
  in
  let config =
    {
      Latency.n;
      unite_percent = int_of_float (unite_frac *. 100.);
      seed;
      domains;
      ops;
      shape;
      reservoir;
    }
  in
  let points = Latency.sweep ~config ~rates () in
  let doc = Latency.to_json config points in
  (* Write the artifact before printing: a consumer that truncates stdout
     (e.g. [| head -1]) closes the pipe and SIGPIPEs the process mid-table,
     which must not cost the JSON document. *)
  (match latency_out with
  | None -> ()
  | Some out ->
    with_out out (fun oc ->
        output_string oc (Repro_obs.Json.to_string doc);
        output_char oc '\n'));
  Format.printf "%a" Latency.pp_table points;
  match baseline with
  | None -> Ok ()
  | Some file ->
    let* base = read_file file in
    (match
       Perfdiff.diff_strings ~threshold_pct:threshold ~base
         ~current:(Repro_obs.Json.to_string doc) ()
     with
    | Error e -> Error (`Msg e)
    | Ok rep ->
      Format.printf "%a" Perfdiff.pp rep;
      Ok ())

let latency_cmd =
  let doc =
    "Coordinated-omission-free open-loop latency sweep: deterministic \
     arrival schedules, intended-start-time accounting, p50/p99/p999 per \
     offered rate, saturation knee."
  in
  Cmd.v (Cmd.info "latency" ~doc)
    Term.(
      term_result
        (const run_latency $ n_arg $ ops_arg $ unite_frac_arg $ seed_arg
        $ domains_arg $ arrival_rates_arg $ shape_arg $ reservoir_arg
        $ latency_out_arg $ baseline_arg $ diff_threshold_arg))

(* -------------------------------------------------------- perfdiff mode *)

let pd_baseline_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline perf JSON document.")

let pd_current_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "current" ] ~docv:"FILE" ~doc:"Current perf JSON document.")

let pd_json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the dsu-perfdiff/v1 report to $(docv) (\"-\" = stdout).")

let pd_fail_arg =
  Arg.(
    value & flag
    & info [ "fail-on-regression" ]
        ~doc:"Exit with status 3 if any metric regressed beyond the threshold.")

let run_perfdiff baseline current threshold json_out fail_on_regression =
  let* base = read_file baseline in
  let* cur = read_file current in
  match Perfdiff.diff_strings ~threshold_pct:threshold ~base ~current:cur () with
  | Error e -> Error (`Msg e)
  | Ok rep ->
    Format.printf "%a" Perfdiff.pp rep;
    (match json_out with
    | None -> ()
    | Some out ->
      with_out out (fun oc ->
          output_string oc (Repro_obs.Json.to_string (Perfdiff.to_json rep));
          output_char oc '\n'));
    if fail_on_regression && rep.Perfdiff.regressions <> [] then exit 3;
    Ok ()

let perfdiff_cmd =
  let doc =
    "Diff two bench/scalability/latency JSON documents and flag metric \
     deltas beyond a noise threshold (kind auto-detected)."
  in
  Cmd.v (Cmd.info "perfdiff" ~doc)
    Term.(
      term_result
        (const run_perfdiff $ pd_baseline_arg $ pd_current_arg
        $ diff_threshold_arg $ pd_json_out_arg $ pd_fail_arg))

(* ------------------------------------------------------------- wal mode *)

module J = Repro_obs.Json

let run_wal file dump do_truncate check json_out =
  let* tail =
    match Dwal.read_file file with
    | Ok t -> Ok t
    | Error e -> Error (`Msg (Printf.sprintf "cannot read %s: %s" file e))
  in
  let torn_before = tail.Dwal.truncated_at in
  let* tail, dropped_bytes =
    if not do_truncate then Ok (tail, None)
    else
      match tail.Dwal.truncated_at with
      | None -> Ok (tail, Some 0)
      | Some off -> (
        match Dwal.truncate_file file with
        | Ok t -> Ok (t, Some (tail.Dwal.total_bytes - off))
        | Error e ->
          Error (`Msg (Printf.sprintf "cannot truncate %s: %s" file e)))
  in
  let records = tail.Dwal.records in
  if dump then
    Array.iter
      (fun (r : Dwal.record) ->
        Printf.printf "%8d  epoch %-6d unite %d %d\n" r.Dwal.seq r.Dwal.epoch
          r.Dwal.x r.Dwal.y)
      records;
  let epoch_min, epoch_max =
    Array.fold_left
      (fun (lo, hi) (r : Dwal.record) ->
        (Stdlib.min lo r.Dwal.epoch, Stdlib.max hi r.Dwal.epoch))
      (max_int, 0) records
  in
  Printf.printf "wal: %s — %d valid record(s)%s, %d bytes, %s\n" file
    (Array.length records)
    (if Array.length records = 0 then ""
     else Printf.sprintf " (epochs %d-%d)" epoch_min epoch_max)
    tail.Dwal.total_bytes
    (match tail.Dwal.truncated_at with
    | None -> "tail intact"
    | Some off ->
      Printf.sprintf "TORN tail at byte %d (%d trailing bytes unreadable)" off
        (tail.Dwal.total_bytes - off));
  (match dropped_bytes with
  | None | Some 0 -> ()
  | Some b -> Printf.printf "truncated: dropped %d torn byte(s)\n" b);
  (match json_out with
  | None -> ()
  | Some out ->
    let fields =
      [
        ("schema", J.String "dsu-wal/v1");
        ("file", J.String file);
        ("records", J.Int (Array.length records));
        ("total_bytes", J.Int tail.Dwal.total_bytes);
        ( "truncated_at",
          match tail.Dwal.truncated_at with
          | None -> J.Null
          | Some off -> J.Int off );
      ]
      @ (if Array.length records = 0 then []
         else [ ("epoch_min", J.Int epoch_min); ("epoch_max", J.Int epoch_max) ])
      @
      match dropped_bytes with
      | None -> []
      | Some b -> [ ("dropped_bytes", J.Int b) ]
    in
    with_out out (fun oc ->
        output_string oc (J.to_string (J.Obj fields));
        output_char oc '\n'));
  if check && torn_before <> None && dropped_bytes = None then exit 1;
  Ok ()

let wal_cmd =
  let doc =
    "Inspect a write-ahead log: decode and CRC-verify every record, report \
     the torn-tail point, optionally dump or physically truncate."
  in
  let file =
    Arg.(
      required
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"The WAL to inspect.")
  in
  let dump =
    Arg.(
      value & flag
      & info [ "dump" ] ~doc:"Print every valid record (seq, epoch, unite x y).")
  in
  let truncate =
    Arg.(
      value & flag
      & info [ "truncate" ]
          ~doc:
            "Physically truncate the file at the torn-tail point, making \
             the valid prefix the whole file.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit with status 1 if the tail is torn (and $(b,--truncate) \
             was not given).")
  in
  Cmd.v (Cmd.info "wal" ~doc)
    Term.(
      term_result
        (const run_wal $ file $ dump $ truncate $ check $ json_out_arg))

(* ------------------------------------------------------ durability mode *)

module Durability = Harness.Durability

let dur_n_arg =
  Arg.(
    value & opt int 65536
    & info [ "n"; "elements" ] ~docv:"N" ~doc:"Number of elements.")

let dur_ops_arg =
  Arg.(
    value & opt int 200_000
    & info [ "ops" ] ~docv:"M" ~doc:"Operations per domain.")

let dur_domains_arg =
  Arg.(
    value & opt int 4
    & info [ "domains" ] ~docv:"D" ~doc:"Mutator domains.")

let dur_unite_frac_arg =
  Arg.(
    value & opt float 0.6
    & info [ "unite-frac" ] ~docv:"F"
        ~doc:"Fraction of operations that are unions.")

let dur_seed_arg =
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let dur_repeats_arg =
  Arg.(
    value & opt int 3
    & info [ "repeats" ] ~docv:"R" ~doc:"Best-of repeats per phase.")

let dur_snapshots_arg =
  Arg.(
    value & opt int 8
    & info [ "snapshots" ] ~docv:"K"
        ~doc:"Fuzzy captures taken during the fuzzy phase.")

let dur_flush_records_arg =
  Arg.(
    value & opt int 256
    & info [ "flush-records" ] ~docv:"K"
        ~doc:"Group-commit batch bound for the wal=on phase.")

let dur_flush_interval_arg =
  Arg.(
    value & opt float 0.002
    & info [ "flush-interval" ] ~docv:"SECONDS"
        ~doc:"Group-commit window for the wal=on phase.")

let max_overhead_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-overhead" ] ~docv:"PCT"
        ~doc:
          "Exit with status 3 if the WAL throughput overhead exceeds \
           $(docv) percent (the CI durability guard).")

let run_durability n ops domains unite_frac seed repeats snapshots
    flush_records flush_interval policy json_out baseline threshold
    max_overhead =
  let* () = check_arg (n >= 2) "--elements must be >= 2" in
  let* () = check_arg (ops >= 1) "--ops must be >= 1" in
  let* () = check_arg (domains >= 1) "--domains must be >= 1" in
  let* () = check_arg (repeats >= 1) "--repeats must be >= 1" in
  let* () = check_arg (snapshots >= 1) "--snapshots must be >= 1" in
  let* () = check_arg (flush_records >= 1) "--flush-records must be >= 1" in
  let* () =
    check_arg (flush_interval > 0.) "--flush-interval must be positive"
  in
  let* () =
    check_arg
      (unite_frac >= 0. && unite_frac <= 1.)
      "--unite-frac must be in [0, 1]"
  in
  let config =
    {
      Durability.n;
      ops_per_domain = ops;
      domains;
      unite_percent = int_of_float (unite_frac *. 100.);
      seed;
      repeats;
      snapshots;
      flush_records;
      flush_interval;
      policy;
    }
  in
  let r = Durability.run ~config () in
  let doc = Durability.to_json r in
  (* Artifact before table, same SIGPIPE discipline as [latency]. *)
  (match json_out with
  | None -> ()
  | Some out ->
    with_out out (fun oc ->
        output_string oc (Repro_obs.Json.to_string doc);
        output_char oc '\n'));
  Format.printf "%a@." Durability.pp r;
  let* () =
    match baseline with
    | None -> Ok ()
    | Some file ->
      let* base = read_file file in
      (match
         Perfdiff.diff_strings ~threshold_pct:threshold ~base
           ~current:(Repro_obs.Json.to_string doc) ()
       with
      | Error e -> Error (`Msg e)
      | Ok rep ->
        Format.printf "%a" Perfdiff.pp rep;
        Ok ())
  in
  (match max_overhead with
  | None -> ()
  | Some pct ->
    if r.Durability.overhead_pct > pct then begin
      Printf.printf "GUARD FAILED: wal overhead %.1f%% exceeds the %.1f%% bound\n"
        r.Durability.overhead_pct pct;
      exit 3
    end);
  Ok ()

let durability_cmd =
  let doc =
    "Measure what durability charges the hot path: WAL throughput overhead \
     and fuzzy vs quiescent snapshot pause (emits dsu-durability/v1)."
  in
  Cmd.v (Cmd.info "durability" ~doc)
    Term.(
      term_result
        (const run_durability $ dur_n_arg $ dur_ops_arg $ dur_domains_arg
        $ dur_unite_frac_arg $ dur_seed_arg $ dur_repeats_arg
        $ dur_snapshots_arg $ dur_flush_records_arg $ dur_flush_interval_arg
        $ policy_arg $ json_out_arg $ baseline_arg $ diff_threshold_arg
        $ max_overhead_arg))

(* ----------------------------------------------------------- serve mode *)

module Hservice = Harness.Service
module Service = Repro_service.Service

let serve_gens_arg =
  Arg.(
    value
    & opt int 2
    & info [ "gens" ] ~docv:"G"
        ~doc:
          "Load-generator domains (client sessions); each walks its own \
           open-loop arrival schedule and polls its own completion lane.")

let serve_workers_arg =
  Arg.(
    value
    & opt int 2
    & info [ "workers" ] ~docv:"W"
        ~doc:"Server worker domains (= bounded ingestion queues).")

let serve_qcap_arg =
  Arg.(
    value
    & opt int 1024
    & info [ "queue-capacity" ] ~docv:"C"
        ~doc:"Per-worker ingestion queue bound — the backpressure point.")

let serve_batch_arg =
  Arg.(
    value
    & opt int 64
    & info [ "batch" ] ~docv:"B"
        ~doc:"Max operations a worker drains per queue lock acquisition.")

let admission_conv =
  let parse s =
    match Service.admission_of_string s with
    | Some a -> Ok a
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown admission policy %S (want reject, shed-oldest, block \
              or block:MS)"
             s))
  in
  let print ppf a = Format.pp_print_string ppf (Service.admission_to_string a) in
  Arg.conv (parse, print)

let serve_admission_arg =
  Arg.(
    value
    & opt admission_conv Service.Reject
    & info [ "admission" ] ~docv:"POLICY"
        ~doc:
          "Admission policy at a full queue: $(b,reject) fails fast, \
           $(b,shed-oldest) displaces the oldest queued op (the victim is \
           answered Shed, never dropped silently), $(b,block) or \
           $(b,block:MS) retries under backoff until a deadline.")

let serve_kind_arg =
  Arg.(
    value
    & opt kind_conv Rsnap.Flat
    & info [ "kind" ] ~docv:"KIND"
        ~doc:"Backend kind: flat, boxed, growable, rank or packed.")

let serve_find_frac_arg =
  Arg.(
    value
    & opt float 0.1
    & info [ "find-frac" ] ~docv:"F"
        ~doc:
          "Fraction of operations that are finds (unions take \
           $(b,--unite-frac), the remainder are same-set queries).")

let serve_wal_arg =
  Arg.(
    value & flag
    & info [ "wal" ]
        ~doc:
          "Attach a write-ahead log: workers force the group commit before \
           acknowledging any op, so every Done ack is durable.")

let serve_deadline_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-op deadline: an op still queued this long past its intended \
           arrival is answered Timed_out without touching the structure \
           (0 = none).")

let serve_chaos_arg =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Run the crash-recovery drill over all five backend kinds instead \
           of the sweep: crash a worker mid-drain and the WAL committer \
           mid-commit, recover from the newest fuzzy snapshot + WAL tail, \
           resume serving, and measure RPO (acked-but-lost unites; must be \
           0) and RTO (time to the first post-recovery ack).  Exits 3 if \
           any drill check fails.")

let run_serve n ops unite_frac find_frac seed gens rates shape workers qcap
    batch admission plan autotune_cache kind durable deadline_ms chaos
    json_out baseline threshold =
  let* () = check_arg (n >= 2) "--elements must be >= 2" in
  let* () = check_arg (ops >= 1) "--ops must be >= 1" in
  let* () = check_arg (gens >= 1) "--gens must be >= 1" in
  let* () = check_arg (workers >= 1) "--workers must be >= 1" in
  let* () = check_arg (qcap >= 1) "--queue-capacity must be >= 1" in
  let* () = check_arg (batch >= 1) "--batch must be >= 1" in
  let* () = check_arg (deadline_ms >= 0.) "--deadline-ms must be >= 0" in
  let* () =
    check_arg
      (unite_frac >= 0. && find_frac >= 0. && unite_frac +. find_frac <= 1.)
      "--unite-frac and --find-frac must be nonnegative and sum to <= 1"
  in
  let* () =
    check_arg
      (List.for_all (fun r -> r > 0.) rates)
      "--arrival-rate must be positive"
  in
  let* plan =
    match plan with
    | None -> Ok Dsu.Plan.default
    | Some (`Plan p) -> Ok p
    | Some `Auto ->
      let profile =
        {
          Harness.Autotune.n;
          domains = workers;
          unite_percent = int_of_float (unite_frac *. 100.);
          dist = Harness.Scalability.Uniform;
          total_ops = gens * ops;
          seed;
        }
      in
      let r, source =
        Harness.Autotune.auto ~cache_dir:autotune_cache ~profile ()
      in
      Printf.printf "plan:          %s (auto, %s)\n"
        (Dsu.Plan.to_string r.Harness.Autotune.winner)
        (match source with `Cached -> "cached" | `Measured -> "measured");
      Ok r.Harness.Autotune.winner
  in
  let config =
    {
      Hservice.n;
      unite_percent = int_of_float (unite_frac *. 100.);
      find_percent = int_of_float (find_frac *. 100.);
      seed;
      generators = gens;
      ops;
      shape;
      workers;
      queue_capacity = qcap;
      batch;
      admission;
      plan;
      kind;
      op_deadline_ms = deadline_ms;
      durable;
    }
  in
  let points, drills =
    if chaos then ([], Hservice.drill_all ~config ())
    else (Hservice.sweep ~config ~rates (), [])
  in
  let doc = Hservice.to_json config ~points ~drills in
  (* Artifact before table, same SIGPIPE discipline as [latency]. *)
  (match json_out with
  | None -> ()
  | Some out ->
    with_out out (fun oc ->
        output_string oc (Repro_obs.Json.to_string doc);
        output_char oc '\n'));
  if chaos then List.iter (Format.printf "%a" Hservice.pp_drill) drills
  else Format.printf "%a" Hservice.pp_table points;
  let* () =
    match baseline with
    | None -> Ok ()
    | Some file ->
      let* base = read_file file in
      (match
         Perfdiff.diff_strings ~threshold_pct:threshold ~base
           ~current:(Repro_obs.Json.to_string doc) ()
       with
      | Error e -> Error (`Msg e)
      | Ok rep ->
        Format.printf "%a" Perfdiff.pp rep;
        Ok ())
  in
  let failed = List.filter (fun d -> not d.Hservice.d_passed) drills in
  if failed <> [] then begin
    Printf.printf "DRILL FAILED: %s\n"
      (String.concat ", "
         (List.map
            (fun d -> Rsnap.kind_to_string d.Hservice.d_kind)
            failed));
    exit 3
  end;
  Ok ()

let serve_cmd =
  let doc =
    "Connectivity-as-a-service: a multi-domain DSU server with bounded \
     ingestion queues and explicit backpressure, driven open-loop; \
     $(b,--chaos) runs the crash-recovery drill and measures RPO/RTO \
     (emits dsu-service/v1)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      term_result
        (const run_serve $ n_arg $ ops_arg $ unite_frac_arg
        $ serve_find_frac_arg $ seed_arg $ serve_gens_arg $ arrival_rates_arg
        $ shape_arg $ serve_workers_arg $ serve_qcap_arg $ serve_batch_arg
        $ serve_admission_arg $ plan_arg $ autotune_cache_arg $ serve_kind_arg
        $ serve_wal_arg $ serve_deadline_arg $ serve_chaos_arg $ json_out_arg
        $ baseline_arg $ diff_threshold_arg))

(* ---------------------------------------------------- connectivity mode *)

module Connectivity = Harness.Connectivity
module Connectit = Graphs.Connectit

let conn_gen_conv =
  let parse s =
    match Connectivity.gen_of_string s with
    | Some g -> Ok g
    | None -> Error (`Msg (Printf.sprintf "unknown generator %S" s))
  in
  let print ppf g = Format.pp_print_string ppf (Connectivity.gen_to_string g) in
  Arg.conv (parse, print)

let conn_gens_arg =
  Arg.(
    value
    & opt_all conn_gen_conv []
    & info [ "gen" ] ~docv:"GEN"
        ~doc:
          "Streamed generator: rmat, er or power-law (repeatable; default \
           rmat and er).")

let conn_sampling_conv =
  let parse s =
    match Connectit.sampling_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown sampling strategy %S" s))
  in
  let print ppf v = Format.pp_print_string ppf (Connectit.sampling_to_string v) in
  Arg.conv (parse, print)

let conn_samplings_arg =
  Arg.(
    value
    & opt_all conn_sampling_conv []
    & info [ "sampling" ] ~docv:"S"
        ~doc:
          "Sampling phase: none, k-out:K or bfs-hubs:H (repeatable; default \
           none and k-out:2).")

let conn_finish_conv =
  let parse s =
    match Connectit.finish_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown finish kernel %S" s))
  in
  let print ppf v = Format.pp_print_string ppf (Connectit.finish_to_string v) in
  Arg.conv (parse, print)

let conn_finishes_arg =
  Arg.(
    value
    & opt_all conn_finish_conv []
    & info [ "finish" ] ~docv:"F"
        ~doc:
          "Finish kernel: per-op or bulk (repeatable; default both).")

let conn_mode_conv =
  let parse s =
    match Connectit.mode_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf v = Format.pp_print_string ppf (Connectit.mode_to_string v) in
  Arg.conv (parse, print)

let conn_modes_arg =
  Arg.(
    value
    & opt_all conn_mode_conv []
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Engine mode: racy (the paper's wait-free engine) or det \
           (schedule-independent bulk rounds); repeatable, default racy.")

let conn_domains_arg =
  Arg.(
    value
    & opt_all int []
    & info [ "domains" ] ~docv:"D"
        ~doc:"Domain count to sweep (repeatable; default 1 and 4).")

let conn_scale_arg =
  Arg.(
    value & opt int 16
    & info [ "scale" ] ~docv:"S" ~doc:"2^$(docv) vertices (default 16).")

let conn_edge_factor_arg =
  Arg.(
    value & opt int 8
    & info [ "edge-factor" ] ~docv:"E"
        ~doc:"Edges = $(docv) * 2^scale (default 8).")

let conn_chunk_arg =
  Arg.(
    value & opt int 16384
    & info [ "chunk" ] ~docv:"C" ~doc:"Stream chunk size in edges (default 16384).")

let conn_simple_arg =
  Arg.(
    value & flag
    & info [ "simple" ]
        ~doc:"Reject self-loops in the streamed generators (resampled endpoint).")

let conn_block_chunks_arg =
  Arg.(
    value & opt int 8
    & info [ "block-chunks" ] ~docv:"B"
        ~doc:"Chunks per deterministic-engine round block (default 8).")

let conn_no_baselines_arg =
  Arg.(
    value & flag
    & info [ "no-baselines" ]
        ~doc:"Skip the Anderson-Woll and Boruvka baseline passes.")

let conn_adversarial_arg =
  Arg.(
    value & opt int 16384
    & info [ "adversarial" ] ~docv:"N"
        ~doc:
          "Elements for the Patrascu-Thorup incremental-connectivity point \
           (0 disables it; default 16384).")

let conn_check_det_arg =
  Arg.(
    value & flag
    & info [ "check-determinism" ]
        ~doc:
          "After the sweep, replay the deterministic engine across domain \
           counts 1/2/4 x three perturbation schedules (injected yields) \
           and demand byte-identical labels; exit 3 on any disagreement.")

let conn_guard_finish_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "guard-finish" ] ~docv:"RATIO"
        ~doc:
          "CI gate: at the highest racy domain count, every bulk finish \
           must reach $(docv) x its per-op twin's finish-phase edges/sec; \
           exit 1 otherwise.")

let run_connectivity gens samplings finishes modes domains_list scale
    edge_factor chunk seed simple plan autotune_cache block_chunks
    no_baselines adversarial_n check_det guard_finish json_out baseline
    threshold =
  let* () = check_arg (scale >= 1 && scale <= 40) "--scale must be in [1, 40]" in
  let* () = check_arg (edge_factor >= 1) "--edge-factor must be >= 1" in
  let* () = check_arg (chunk >= 1) "--chunk must be >= 1" in
  let* () = check_arg (block_chunks >= 1) "--block-chunks must be >= 1" in
  let* () = check_arg (adversarial_n >= 0) "--adversarial must be >= 0" in
  let* () =
    check_arg
      (List.for_all (fun d -> d >= 1) domains_list)
      "--domains must be >= 1"
  in
  let defaults = Connectivity.default_config in
  let domains_list =
    if domains_list = [] then defaults.Connectivity.domains_list
    else domains_list
  in
  let* plan =
    match plan with
    | None -> Ok Dsu.Plan.default
    | Some (`Plan p) -> Ok p
    | Some `Auto ->
      let profile =
        {
          Harness.Autotune.n = 1 lsl scale;
          domains = List.fold_left max 1 domains_list;
          unite_percent = 100;
          dist = Harness.Scalability.Uniform;
          total_ops = edge_factor * (1 lsl scale);
          seed;
        }
      in
      let r, source =
        Harness.Autotune.auto ~cache_dir:autotune_cache ~profile ()
      in
      Printf.printf "plan:     %s (auto, %s)\n%!"
        (Dsu.Plan.to_string r.Harness.Autotune.winner)
        (match source with `Cached -> "cached" | `Measured -> "measured");
      Ok r.Harness.Autotune.winner
  in
  let config =
    {
      Connectivity.scale;
      edge_factor;
      chunk_size = chunk;
      seed;
      simple;
      domains_list;
      gens = (if gens = [] then defaults.Connectivity.gens else gens);
      samplings =
        (if samplings = [] then defaults.Connectivity.samplings else samplings);
      finishes =
        (if finishes = [] then defaults.Connectivity.finishes else finishes);
      modes = (if modes = [] then defaults.Connectivity.modes else modes);
      plan;
      block_chunks;
      baselines = not no_baselines;
      adversarial_n;
    }
  in
  let points =
    Connectivity.sweep ~config
      ~progress:(fun p ->
        Printf.eprintf "connectivity: %s %s %s %s d=%d  %.2f Medges/s\n%!"
          p.Connectivity.gen p.Connectivity.mode p.Connectivity.sampling
          p.Connectivity.finish p.Connectivity.domains
          (p.Connectivity.edges_per_sec /. 1e6))
      ()
  in
  let baselines_pts =
    if config.Connectivity.baselines then Connectivity.run_baselines ~config ()
    else []
  in
  let adversarial =
    if adversarial_n = 0 then None
    else
      Some
        (Connectivity.run_adversarial ~config
           ~domains:(List.fold_left max 1 domains_list)
           ())
  in
  let doc = Connectivity.to_json ~config ?adversarial ~baselines:baselines_pts points in
  (* Artifact before table, same SIGPIPE discipline as [latency]. *)
  (match json_out with
  | None -> ()
  | Some out ->
    with_out out (fun oc ->
        output_string oc (Repro_obs.Json.to_string doc);
        output_char oc '\n'));
  Format.printf "%a@." Connectivity.pp_table points;
  if baselines_pts <> [] then
    Format.printf "%a@." Connectivity.pp_baselines baselines_pts;
  (match adversarial with
  | None -> ()
  | Some a ->
    Printf.printf
      "adversarial: n=%d, %d ops (%d unions, %d queries) on %d domain(s), \
       %.2f Mops/s\n"
      a.Connectivity.a_n a.Connectivity.a_ops a.Connectivity.a_unions
      a.Connectivity.a_queries a.Connectivity.a_domains
      (a.Connectivity.a_ops_per_sec /. 1e6));
  let* () =
    match baseline with
    | None -> Ok ()
    | Some file ->
      let* base = read_file file in
      (match
         Perfdiff.diff_strings ~threshold_pct:threshold ~base
           ~current:(Repro_obs.Json.to_string doc) ()
       with
      | Error e -> Error (`Msg e)
      | Ok rep ->
        Format.printf "%a" Perfdiff.pp rep;
        Ok ())
  in
  if check_det then begin
    let stream =
      Connectivity.make_stream config
        (List.hd (if gens = [] then defaults.Connectivity.gens else gens))
    in
    let outcome =
      Lincheck.Determinism.check
        ~run:(fun ~domains ~on_round ->
          let labels, _ =
            Graphs.Det_bulk.run ~domains ~block_chunks ~on_round stream
          in
          labels)
        ()
    in
    Printf.printf "determinism: %d runs, %s\n" outcome.Lincheck.Determinism.runs
      (if outcome.Lincheck.Determinism.ok then
         Printf.sprintf "all labels byte-identical (digest %s)"
           outcome.Lincheck.Determinism.digest
       else "DISAGREEMENT");
    if not outcome.Lincheck.Determinism.ok then begin
      List.iter (Printf.printf "  %s\n")
        outcome.Lincheck.Determinism.failures;
      exit 3
    end
  end;
  (match guard_finish with
  | None -> ()
  | Some min_ratio -> (
    match Connectivity.guard_finish ~min_ratio points with
    | Ok (worst, pairs) ->
      Printf.printf
        "guard-finish: ok — worst bulk/per-op finish ratio %.2f over %d \
         pair(s) (floor %.2f)\n"
        worst (List.length pairs) min_ratio
    | Error e ->
      Printf.eprintf "guard-finish: FAIL — %s\n%!" e;
      exit 1));
  Ok ()

let connectivity_cmd =
  let doc =
    "Streaming-connectivity benchmark family: ConnectIt-style sample+finish \
     pipeline over chunked edge streams (never materialized), racy vs \
     deterministic engines, edges/sec per phase vs the Anderson-Woll and \
     Boruvka baselines (emits dsu-connectivity/v1)."
  in
  Cmd.v (Cmd.info "connectivity" ~doc)
    Term.(
      term_result
        (const run_connectivity $ conn_gens_arg $ conn_samplings_arg
        $ conn_finishes_arg $ conn_modes_arg $ conn_domains_arg
        $ conn_scale_arg $ conn_edge_factor_arg $ conn_chunk_arg $ seed_arg
        $ conn_simple_arg $ plan_arg $ autotune_cache_arg
        $ conn_block_chunks_arg $ conn_no_baselines_arg $ conn_adversarial_arg
        $ conn_check_det_arg $ conn_guard_finish_arg $ json_out_arg
        $ baseline_arg $ diff_threshold_arg))

let main =
  let doc = "Workload driver for the concurrent disjoint-set-union library" in
  Cmd.group (Cmd.info "dsu_workload" ~doc)
    [
      native_cmd;
      sim_cmd;
      lincheck_cmd;
      chaos_cmd;
      snapshot_cmd;
      restore_cmd;
      wal_cmd;
      durability_cmd;
      latency_cmd;
      serve_cmd;
      connectivity_cmd;
      perfdiff_cmd;
    ]

let () = exit (Cmd.eval main)
