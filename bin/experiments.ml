(* The experiment driver: regenerates the paper-claim tables of DESIGN.md §5.

   Usage:
     experiments list         enumerate experiments
     experiments run e4 e5    run selected experiments
     experiments all          run everything (the EXPERIMENTS.md record) *)

open Cmdliner

let list_cmd =
  let doc = "List all experiments with their claims." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-4s %s@.     %s@." e.Harness.Experiment.id
          e.Harness.Experiment.title e.Harness.Experiment.claim)
      Harness.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_ids ids =
  let unknown = List.filter (fun id -> Harness.Registry.find id = None) ids in
  if unknown <> [] then begin
    Format.eprintf "unknown experiment(s): %s@." (String.concat ", " unknown);
    exit 1
  end;
  List.iter
    (fun id ->
      match Harness.Registry.find id with
      | Some e -> Harness.Experiment.run Format.std_formatter e
      | None -> ())
    ids

let run_cmd =
  let doc = "Run the named experiments (e1 .. e13)." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ ids)

let all_cmd =
  let doc = "Run every experiment in order." in
  let run () = Harness.Registry.run_all Format.std_formatter in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ const ())

let main =
  let doc = "Reproduction experiments for Jayanti & Tarjan, PODC 2016" in
  Cmd.group (Cmd.info "experiments" ~doc) [ list_cmd; run_cmd; all_cmd ]

let () = exit (Cmd.eval main)
